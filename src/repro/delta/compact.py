"""Compactor: fold resident deltas back into base slices, as a Workflow.

DualTable's background merge, expressed as a
:class:`~repro.workflow.dag.Workflow` so it runs under the same bounded
retry / fault-injection machinery as every other multi-step job:

``snapshot`` — capture the resident ops up to a watermark and classify
cells: *fold* cells hold only inserts, *rewrite* cells hold tombstones.

``fold`` — stage the fold cells' rows (global sequence order, exactly the
order :func:`~repro.core.dgf.builder.append_with_dgf` would have written
them) and run the append build job at the next generation.  The reducer
writes each cell's merged GFUValue with ``compacted_seq = watermark`` in
a single put, and the engine's reduce tasks only ever crash before their
first side effect, so this step is chaos-safe without its own retry.

``rewrite`` — every base file holding a slice of a tombstoned cell is
rewritten *in place*, whole: suppressed keys dropped, surviving delta
rows appended at the cell's first slice, co-resident cells' slices
copied verbatim at their new offsets.  Whole-file rewrite is not
optional: the table's files ARE the logical table (a full scan reads
every byte of every file), so superseded rows cannot stay behind as
dead space.  Each touched cell's GFUValue is swapped in one put (new
header and locations; tombstoned cells also take the watermark), and
the reclaimed bytes are reported.  Source rows are read once and staged
on the workflow context, so bounded action retry replays identical
writes even after a partial failure.

``commit`` — recompute bounds, bump the generation, prune every
snapshotted op (``seq <= watermark``) from the delta cells.  Cache
coherence rides the KV write listeners — every put/delete above evicts
exactly its own entry, never a table namespace.

Correctness protocol with concurrent readers: merge-on-read loads delta
cells *before* base values; this workflow writes watermarked base values
*before* pruning.  Whatever the interleaving, an op is applied exactly
once — still in the delta and gated by the watermark, or folded into the
base and pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.core.dgf.builder import (_SliceWriter, compile_precompute,
                                    compute_bounds, parse_precompute_spec,
                                    run_build_job, PRECOMPUTE_PROPERTY)
from repro.core.dgf.gfu import GFUValue, SliceLocation
from repro.core.dgf.inputformat import SLICES_META_KEY, DgfSliceInputFormat
from repro.delta.overlay import resolve_ops
from repro.delta.store import DeltaBinding, INSERT
from repro.errors import DeltaError
from repro.hive import formats
from repro.mapreduce.splits import FileSplit
from repro.workflow.dag import Workflow, WorkflowRun


@dataclass
class CompactionReport:
    """What one compaction folded (also mirrored to ``delta:compact``
    span counters and the session metrics registry)."""

    table: str
    index: str
    watermark: int = 0
    generation: Optional[int] = None
    folded_cells: int = 0
    rewritten_cells: int = 0
    folded_rows: int = 0
    suppressed_rows: int = 0
    pruned_ops: int = 0
    dead_bytes: int = 0
    run: Optional[WorkflowRun] = None

    @property
    def compacted_cells(self) -> int:
        return self.folded_cells + self.rewritten_cells


#: stand-in GFUValue for tombstoned cells with no base entry at all.
_NO_VALUE = GFUValue(header={}, locations=[], records=0)


class Compactor:
    """Folds a binding's resident deltas into fresh base slices."""

    def __init__(self, binding: DeltaBinding, rewrite_attempts: int = 3):
        self.binding = binding
        self.rewrite_attempts = rewrite_attempts

    def _stage_rewrite(self, rewrite_cells: Dict[str, list]
                       ) -> Dict[str, Any]:
        """Read-once staging for the rewrite action.

        Resolves each tombstoned cell's suppressed keys and surviving
        rows against its *current* watermark, snapshots every GFU entry,
        and reads the full slice layout and rows of every affected file
        (any file holding a slice of a tombstoned cell).  Staged on the
        workflow context so a retried rewrite replays identical writes
        instead of re-reading offsets it may already have moved.
        """
        binding = self.binding
        session = binding.session
        store = binding.dgf_store
        reader = DgfSliceInputFormat(binding.table)

        resolved = {}
        for cell in sorted(rewrite_cells):
            base = store.get_value(cell)
            watermark = base.compacted_seq if base is not None else 0
            resolved[cell] = resolve_ops(rewrite_cells[cell], watermark,
                                         binding.row_key)

        cell_values = dict(store.iter_entries())
        affected_paths = sorted({
            location.file for cell in resolved
            for location in cell_values.get(cell, _NO_VALUE).locations})
        affected: Dict[str, list] = {}
        for path in affected_paths:
            slices = sorted(
                (location.start, location.end, cell)
                for cell, value in cell_values.items()
                for location in value.locations if location.file == path)
            length = session.fs.file_length(path)
            staged = []
            for start, end, cell in slices:
                split = FileSplit(path=path, start=0, length=length)
                split.meta[SLICES_META_KEY] = [(start, end)]
                rows = [tuple(row) for _off, row
                        in reader.read_split(session.fs, split)]
                staged.append(((start, end, cell), rows))
            affected[path] = staged
        return {"resolved": resolved, "values": cell_values,
                "affected": affected}

    def run(self, cells: Optional[Sequence[str]] = None
            ) -> CompactionReport:
        """Compact ``cells`` (default: every resident cell).  Restricting
        the cell set yields reproducible mid-compaction states — the
        differential suite queries between two such partial runs."""
        binding = self.binding
        session = binding.session
        # Compaction folds delta ops into the *primary* copy only; any
        # replica-fleet layouts would be missing the folded rows once the
        # ops are pruned.  Drop the fleet up front (re-add layouts after
        # compacting) rather than ever serving a stale copy.
        from repro.core.dgf import fleet
        fleet.drop_layouts(session, binding.table, binding.index)
        report = CompactionReport(table=binding.table.name,
                                  index=binding.index.name)
        with session.tracer.span("delta:compact") as span:
            workflow = self._workflow(cells, report)
            report.run = workflow.run(context={})
            if not report.run.succeeded:
                failed = [r for r in report.run.results.values()
                          if r.error is not None]
                raise DeltaError(
                    f"compaction of {binding.table.name!r} failed: "
                    + "; ".join(f"{r.name}: {r.error}" for r in failed))
            span.add("delta.folded_cells", report.folded_cells)
            span.add("delta.rewritten_cells", report.rewritten_cells)
            span.add("delta.folded_rows", report.folded_rows)
            span.add("delta.suppressed_rows", report.suppressed_rows)
            span.add("delta.pruned_ops", report.pruned_ops)
            span.add("delta.dead_bytes", report.dead_bytes)
        metrics = session.metrics
        metrics.counter("delta_compactions_total",
                        "streaming compactions completed").inc()
        metrics.counter("delta_folded_rows_total",
                        "delta rows folded into base slices").inc(
                            report.folded_rows)
        metrics.gauge("delta_resident_ops",
                      "delta ops resident (unfolded) in the KV store").set(
                          binding.resident_ops)
        return report

    # ----------------------------------------------------------- the actions
    def _workflow(self, cells: Optional[Sequence[str]],
                  report: CompactionReport) -> Workflow:
        binding = self.binding
        session = binding.session
        table = binding.table
        store = binding.dgf_store
        policy = binding.policy
        calls = parse_precompute_spec(
            binding.index.properties.get(PRECOMPUTE_PROPERTY, ""))
        aggregates = compile_precompute(table, calls)
        shared: Dict[str, Any] = {}

        def snapshot(_ctx):
            watermark, snap = binding.snapshot(cells)
            report.watermark = watermark
            shared["snapshot"] = snap
            shared["fold"] = {
                cell: ops for cell, ops in snap.items()
                if all(op[1] == INSERT for op in ops)}
            shared["rewrite"] = {
                cell: ops for cell, ops in snap.items()
                if cell not in shared["fold"]}
            if snap:
                shared["generation"] = store.get_meta("generation") + 1
                report.generation = shared["generation"]
            return {"cells": len(snap), "watermark": watermark}

        def fold(_ctx):
            fold_cells = shared["fold"]
            if not fold_cells:
                return {"rows": 0}
            # Global sequence order across cells reproduces the order an
            # equivalent append_with_dgf would have staged these rows, so
            # an insert-only compaction is byte-identical to the append.
            staged = sorted(
                (op[0], op[3]) for ops in fold_cells.values()
                for op in ops)
            generation = shared["generation"]
            staging = (f"/tmp/dgf-compact/{table.name.lower()}"
                       f"/g{generation:03d}")
            if session.fs.exists(staging):
                session.fs.delete(staging, recursive=True)
            session.fs.mkdirs(staging)
            with formats.open_row_writer(session.fs, f"{staging}/data_0",
                                         table) as writer:
                for _seq, row in staged:
                    writer.write_row(row)
            output_dir = table.properties["dgf_data_location"]
            run_build_job(session, table, binding.index, policy,
                          aggregates, [staging], output_dir,
                          generation=generation,
                          compacted_seq=report.watermark)
            session.fs.delete(staging, recursive=True)
            report.folded_cells = len(fold_cells)
            report.folded_rows += len(staged)
            return {"rows": len(staged)}

        def rewrite(_ctx):
            rewrite_cells = shared["rewrite"]
            if not rewrite_cells:
                return {"cells": 0}
            generation = shared["generation"]
            output_dir = table.properties["dgf_data_location"]
            fs = session.fs
            suppressed = rows_written = dead = 0

            if "rewrite_staged" not in shared:
                shared["rewrite_staged"] = self._stage_rewrite(rewrite_cells)
            staged = shared["rewrite_staged"]
            resolved = staged["resolved"]
            cell_values = staged["values"]
            affected = staged["affected"]

            # Where each tombstoned cell's surviving delta rows land: right
            # after the kept rows of its first existing slice.
            pending_at = {cell: (value.locations[0].file,
                                 value.locations[0].start)
                          for cell, value in cell_values.items()
                          if cell in resolved and value.locations}

            states: Dict[str, Dict[str, Any]] = {
                cell: {agg.key: agg.function.initial()
                       for agg in aggregates} for cell in resolved}
            counts = {cell: 0 for cell in resolved}
            new_locs: Dict[Any, Optional[SliceLocation]] = {}

            for path in sorted(affected):
                old_length = fs.file_length(path)
                plan = []
                for (start, _end, cell), rows in affected[path]:
                    if cell in resolved:
                        doomed, pending = resolved[cell]
                        kept = []
                        for row in rows:
                            if binding.row_key(row) in doomed:
                                suppressed += 1
                            else:
                                kept.append(row)
                        if pending_at.get(cell) == (path, start):
                            kept = kept + list(pending)
                        rows = kept
                    plan.append((start, cell, rows))
                if not any(rows for _s, _c, rows in plan):
                    # Every slice in the file emptied out; an empty file
                    # would still be enumerated by full scans, so drop it.
                    fs.delete(path)
                    for start, cell, _rows in plan:
                        new_locs[(cell, path, start)] = None
                    dead += old_length
                    continue
                writer = _SliceWriter(
                    formats.open_row_writer(fs, path, table,
                                            overwrite=True), path)
                for start, cell, rows in plan:
                    if not rows:
                        new_locs[(cell, path, start)] = None
                        continue
                    new_start = writer.boundary()
                    for row in rows:
                        writer.write_row(row)
                        if cell in resolved:
                            cell_states = states[cell]
                            for agg in aggregates:
                                cell_states[agg.key] = agg.accumulate_row(
                                    cell_states[agg.key], row)
                    new_end = writer.boundary()
                    new_locs[(cell, path, start)] = SliceLocation(
                        path, new_start, new_end)
                    if cell in resolved:
                        counts[cell] += len(rows)
                writer.close()
                dead += old_length - fs.file_length(path)

            # Swap every touched cell's GFUValue: rewritten slices take
            # their new offsets, slices in untouched files carry over.
            touched = sorted({cell for slices in affected.values()
                              for (_s, _e, cell), _rows in slices})
            for cell in touched:
                value = cell_values[cell]
                locations = []
                for location in value.locations:
                    key = (cell, location.file, location.start)
                    if key in new_locs:
                        if new_locs[key] is not None:
                            locations.append(new_locs[key])
                    else:
                        locations.append(location)
                if cell in resolved:
                    if not locations:
                        session.kvstore.delete(store.gfu_key(cell))
                        continue
                    store.put_value(cell, GFUValue(
                        header=dict(states[cell]),
                        locations=locations,
                        records=counts[cell],
                        compacted_seq=report.watermark))
                    rows_written += counts[cell]
                else:
                    store.put_value(cell, GFUValue(
                        header=value.header,
                        locations=locations,
                        records=value.records,
                        compacted_seq=value.compacted_seq))

            # Tombstoned cells with no base slices at all (a streamed
            # insert later deleted, or an insert+delete to a brand-new
            # cell): any surviving rows get a fresh slice file.
            baseless = [cell for cell in sorted(resolved)
                        if not cell_values.get(cell,
                                               _NO_VALUE).locations]
            for i, cell in enumerate(baseless):
                _doomed, pending = resolved[cell]
                if not pending:
                    if cell in cell_values:
                        session.kvstore.delete(store.gfu_key(cell))
                    continue
                path = f"{output_dir}/c{generation:03d}-{i:05d}_0"
                writer = _SliceWriter(
                    formats.open_row_writer(fs, path, table,
                                            overwrite=True), path)
                new_start = writer.boundary()
                cell_states = states[cell]
                for row in pending:
                    writer.write_row(row)
                    for agg in aggregates:
                        cell_states[agg.key] = agg.accumulate_row(
                            cell_states[agg.key], row)
                new_end = writer.boundary()
                writer.close()
                store.put_value(cell, GFUValue(
                    header=dict(cell_states),
                    locations=[SliceLocation(path, new_start, new_end)],
                    records=len(pending),
                    compacted_seq=report.watermark))
                rows_written += len(pending)

            report.rewritten_cells = len(rewrite_cells)
            report.folded_rows += rows_written
            report.suppressed_rows = suppressed
            report.dead_bytes = dead
            return {"cells": len(rewrite_cells), "rows": rows_written}

        def commit(_ctx):
            snap = shared["snapshot"]
            if not snap:
                return {"pruned": 0}
            store.put_meta("bounds", compute_bounds(store, policy))
            store.put_meta("generation", shared["generation"])
            report.pruned_ops = binding.prune(list(snap),
                                              report.watermark)
            # Repair the demoted ancestor chains of every folded cell.
            # Cells still resident after a partial compaction must keep
            # their demotion markers (keep_demoted), so summarized nodes
            # never cover an unfolded op.
            from repro.pyramid import PYRAMID_STATE_KEY, refresh_cells
            if PYRAMID_STATE_KEY in binding.index.state:
                refresh_cells(session, binding.index, sorted(snap),
                              keep_demoted=binding.resident_cells)
            return {"pruned": report.pruned_ops}

        workflow = Workflow(f"delta-compact-{table.name.lower()}")
        workflow.add("snapshot", snapshot)
        # The fold's MapReduce job retries failed task attempts itself and
        # its reducer side effects are exactly-once, so a whole-action
        # retry (which would double-merge) is wrong here: one attempt.
        workflow.add("fold", fold, after=("snapshot",))
        workflow.add("rewrite", rewrite, after=("snapshot",),
                     max_attempts=self.rewrite_attempts)
        workflow.add("commit", commit, after=("fold", "rewrite"),
                     max_attempts=self.rewrite_attempts)
        return workflow
