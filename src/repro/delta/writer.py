"""StreamingWriter: the admission-controlled ingest path.

DualTable gives writers their own door into the system, beside the query
door: streamed inserts/upserts/deletes land in the KV delta store
immediately instead of waiting for the next bulk reorganization.  The
writer buffers ops client-side and flushes them in batches (one KV
read-modify-write per touched grid cell per flush), honouring the same
:mod:`repro.service.queryservice` health signals queries do:

* a **closed** service refuses new ops (:class:`ServiceClosedError`);
* a **degraded** service sheds writes when ``shed_when_degraded`` is set
  (:class:`ServiceDegradedError` — transient, retry after the window);
* a full client buffer raises :class:`ServiceOverloadedError` rather
  than growing without bound.

When ``compact_threshold`` is set, a flush that leaves at least that
many resident ops triggers a synchronous :class:`Compactor` run — the
simplest stand-in for DualTable's background merge daemon, and exactly
as observable (``delta:compact`` span, ``delta_compactions_total``).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.delta.compact import CompactionReport, Compactor
from repro.delta.store import DeltaBinding
from repro.errors import (ServiceClosedError, ServiceDegradedError,
                          ServiceOverloadedError)


class StreamingWriter:
    """Buffered, admission-controlled writer for one table's delta store.

    Usually obtained from
    :meth:`repro.service.queryservice.QueryService.streaming_writer`;
    standalone construction (``service=None``) skips service admission
    but keeps the buffer bound.
    """

    def __init__(self, binding: DeltaBinding, service=None,
                 batch_size: int = 256, buffer_limit: int = 65536,
                 shed_when_degraded: bool = False,
                 compact_threshold: Optional[int] = None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if buffer_limit < batch_size:
            raise ValueError("buffer_limit must be >= batch_size")
        self.binding = binding
        self.service = service
        self.batch_size = batch_size
        self.buffer_limit = buffer_limit
        self.shed_when_degraded = shed_when_degraded
        self.compact_threshold = compact_threshold
        self._buffer: List[Tuple[str, Sequence[Any]]] = []
        self._accepted = 0
        self._flushed = 0
        self._compactions: List[CompactionReport] = []
        self._closed = False

    # ------------------------------------------------------------- admission
    def _admit(self, count: int) -> None:
        if self._closed:
            raise ServiceClosedError(
                f"streaming writer for {self.binding.table.name!r} is "
                "closed")
        service = self.service
        if service is not None:
            if service.closed:
                raise ServiceClosedError(
                    "query service is closed; streaming writes refused")
            if self.shed_when_degraded and service.degraded:
                raise ServiceDegradedError(
                    "query service is degraded; shedding streaming writes")
        if len(self._buffer) + count > self.buffer_limit:
            raise ServiceOverloadedError(
                f"streaming buffer full ({self.buffer_limit} ops); flush "
                "or raise buffer_limit")

    def _enqueue(self, kind: str, payloads: Sequence[Sequence[Any]]) -> int:
        payloads = list(payloads)
        self._admit(len(payloads))
        for payload in payloads:
            self._buffer.append((kind, payload))
        self._accepted += len(payloads)
        if len(self._buffer) >= self.batch_size:
            self.flush()
        return len(payloads)

    # ------------------------------------------------------------------ ops
    def insert(self, rows: Sequence[Sequence[Any]]) -> int:
        """Buffer full rows for insertion."""
        return self._enqueue("insert", rows)

    def upsert(self, rows: Sequence[Sequence[Any]]) -> int:
        """Buffer full rows that replace any row with the same key."""
        return self._enqueue("upsert", rows)

    def delete(self, keys: Sequence[Sequence[Any]]) -> int:
        """Buffer key tuples (the binding's ``key_columns`` order) whose
        rows must disappear."""
        return self._enqueue("delete", keys)

    # ---------------------------------------------------------------- flush
    def flush(self) -> int:
        """Write every buffered op to the delta store; returns the count."""
        if not self._buffer:
            return 0
        ops, self._buffer = self._buffer, []
        count = self.binding.ingest(ops)
        self._flushed += count
        metrics = self.binding.session.metrics
        counter = metrics.counter("delta_ops_total",
                                  "streaming ops written to delta cells")
        for kind, _payload in ops:
            counter.inc(kind=kind)
        metrics.gauge(
            "delta_resident_ops",
            "delta ops resident (unfolded) in the KV store").set(
                self.binding.resident_ops)
        if (self.compact_threshold is not None
                and self.binding.resident_ops >= self.compact_threshold):
            self._compactions.append(self.compact())
        return count

    def compact(self, cells: Optional[Sequence[str]] = None
                ) -> CompactionReport:
        """Flush, then fold resident deltas into the base synchronously."""
        if self._buffer:
            self.flush()
        return Compactor(self.binding).run(cells)

    # ------------------------------------------------------------ lifecycle
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending_ops(self) -> int:
        """Ops buffered client-side, not yet in the delta store."""
        return len(self._buffer)

    @property
    def accepted_ops(self) -> int:
        return self._accepted

    @property
    def flushed_ops(self) -> int:
        return self._flushed

    @property
    def compactions(self) -> Tuple[CompactionReport, ...]:
        """Reports from threshold-triggered compactions (not manual ones)."""
        return tuple(self._compactions)

    def close(self) -> None:
        """Flush remaining ops and refuse further writes."""
        if self._closed:
            return
        try:
            self.flush()
        finally:
            self._closed = True

    def __enter__(self) -> "StreamingWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Don't flush on an exception path: the caller is unwinding and a
        # partial batch may be the very thing that failed.
        if exc_type is None:
            self.close()
        else:
            self._closed = True
