"""DeltaStore + DeltaBinding: GFU-keyed streamed writes in the KV store.

DualTable's hybrid model keeps the base table in HDFS files and the
mutable tail in the KV store.  Here the tail is keyed by the *same*
GFUKeys the DGF grid uses for base slices:

* ``delta:<table>:<index>:<gfukey>``   -> list of delta ops (seq order)
* ``deltameta:<table>:<index>:state``  -> sequence counter + resident
  cells + key-column configuration

so Algorithm 3's inner/boundary pruning applies to streamed rows exactly
as it does to base slices: a query region only ever loads the delta
cells it overlaps.

One delta *op* is a plain tuple ``(seq, kind, key, row)`` — ``kind`` is
``"i"``/``"u"``/``"d"`` for insert/upsert/delete, ``key`` the primary-key
values (None for keyless inserts), ``row`` the full row (None for
deletes).  ``seq`` is a monotonically increasing per-binding sequence;
the compactor stamps the folded watermark into the base
:class:`~repro.core.dgf.gfu.GFUValue` (``compacted_seq``), and
merge-on-read applies only ops newer than that watermark.  Readers load
the delta cell *before* the base value while the compactor writes the
new base value *before* pruning the delta cell, so every interleaving of
a query with a concurrent compaction sees each op exactly once.

Upserts and deletes require ``key_columns`` that include every index
dimension: the primary key then pins a row to one grid cell, so an
upsert can never silently move a row between cells and tombstones route
to the cell holding the doomed base rows.

Reads used by the query planner go through the session's
:class:`~repro.service.cache.GfuMetadataCache` with the same
logical-get replay as base GFU metadata (see
:func:`repro.core.dgf.store.cached_fetch`), so traces are byte-identical
cache on/off.  Writer read-modify-write cycles bypass the cache and run
under the binding's lock.
"""

from __future__ import annotations

import threading
from typing import (Any, Dict, List, Optional, Sequence, Tuple,
                    TYPE_CHECKING)

from repro.core.dgf.policy import SplittingPolicy
from repro.core.dgf.store import cached_fetch
from repro.errors import DeltaError
from repro.hiveql.predicates import Interval
from repro.kvstore.hbase import KVStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.delta.overlay import DeltaOverlay
    from repro.hive.metastore import IndexInfo, TableInfo
    from repro.service.cache import GfuMetadataCache

#: name of the single metadata entry holding a binding's durable state.
STATE_META = "state"

INSERT = "i"
UPSERT = "u"
DELETE = "d"


class DeltaStore:
    """Typed access to one (table, index) pair's delta namespace."""

    def __init__(self, kvstore: KVStore, table: str, index: str,
                 cache: Optional["GfuMetadataCache"] = None):
        self.kvstore = kvstore
        self.cache = cache
        self._prefix = f"delta:{table.lower()}:{index.lower()}:"
        self._meta_prefix = f"deltameta:{table.lower()}:{index.lower()}:"

    # ------------------------------------------------------------- cell keys
    def cell_key(self, cell: str) -> str:
        return self._prefix + cell

    @property
    def state_key(self) -> str:
        return self._meta_prefix + STATE_META

    # ------------------------------------------------------ planner read path
    def load_state(self) -> Optional[Dict[str, Any]]:
        """The durable binding state, via the metadata cache."""
        found = cached_fetch(self.kvstore, self.cache, [self.state_key])
        return found.get(self.state_key)

    def load_cells(self, cells: Sequence[str]) -> Dict[str, List[tuple]]:
        """Batch-load delta cells (probe order preserved, only present
        cells returned, by bare cell key)."""
        full_keys = [self.cell_key(cell) for cell in cells]
        found = cached_fetch(self.kvstore, self.cache, full_keys)
        return {key[len(self._prefix):]: value
                for key, value in found.items()}

    # ------------------------------------------------------- writer RMW path
    def get_cell(self, cell: str) -> Optional[List[tuple]]:
        return self.kvstore.get(self.cell_key(cell))

    def put_cell(self, cell: str, ops: List[tuple]) -> None:
        self.kvstore.put(self.cell_key(cell), ops)

    def delete_cell(self, cell: str) -> None:
        self.kvstore.delete(self.cell_key(cell))

    def put_state(self, state: Dict[str, Any]) -> None:
        self.kvstore.put(self.state_key, state)

    def clear(self) -> None:
        stop = self._prefix + "\U0010ffff"
        for key, _value in list(self.kvstore.scan(self._prefix, stop)):
            self.kvstore.delete(key)
        self.kvstore.delete(self.state_key)


class DeltaBinding:
    """One table's attachment to the streaming delta path.

    Owned by the session (``session.attach_delta``); the binding caches
    the grid policy, the sequence counter and the resident-cell registry
    in memory (synced to :data:`STATE_META` on every mutation), so query
    planning checks residency without touching the KV store and a table
    with no resident deltas plans byte-identically to one never attached.
    """

    def __init__(self, session, table: "TableInfo", index: "IndexInfo",
                 key_columns: Optional[Sequence[str]] = None):
        if index.handler != "dgf":
            raise DeltaError(
                f"streaming deltas require a DGF index; {index.name!r} "
                f"uses handler {index.handler!r}")
        if not index.built:
            raise DeltaError(
                f"index {index.name!r} must be built before attaching a "
                "streaming delta")
        self.session = session
        self.table = table
        self.index = index
        self.delta_store = DeltaStore(session.kvstore, table.name,
                                      index.name,
                                      cache=session.metadata_cache)
        self.dgf_store = session.dgf_store(table.name, index.name)
        self.policy: SplittingPolicy = self.dgf_store.load_policy()
        self.dim_positions = [table.schema.index_of(name)
                              for name in self.policy.names]
        state = self.delta_store.load_state()
        if key_columns is None and state is not None:
            key_columns = state.get("key_columns")
        self.key_columns: Optional[Tuple[str, ...]] = None
        self.key_positions: Optional[List[int]] = None
        self._dims_in_key: Optional[List[int]] = None
        if key_columns is not None:
            names = [table.schema.column(c).name for c in key_columns]
            self.key_columns = tuple(names)
            self.key_positions = [table.schema.index_of(n) for n in names]
            lowered = [n.lower() for n in names]
            missing = [d for d in self.policy.names
                       if d.lower() not in lowered]
            if missing:
                raise DeltaError(
                    f"key_columns must include every index dimension so a "
                    f"key pins its row to one grid cell; missing {missing}")
            self._dims_in_key = [lowered.index(d.lower())
                                 for d in self.policy.names]
        self._lock = threading.RLock()
        if state is not None:
            self._seq = state["seq"]
            self._resident = set(state["cells"])
            self._resident_ops = state.get("ops", 0)
        else:
            self._seq = 0
            self._resident = set()
            self._resident_ops = 0

    # ------------------------------------------------------------ inspection
    @property
    def resident_cells(self) -> Tuple[str, ...]:
        """Sorted cells currently holding unfolded ops (empty tuple when
        everything has been compacted away)."""
        with self._lock:
            return tuple(sorted(self._resident))

    @property
    def resident_ops(self) -> int:
        with self._lock:
            return self._resident_ops

    @property
    def current_seq(self) -> int:
        with self._lock:
            return self._seq

    def serves(self, index_name: str) -> bool:
        return self.index.name.lower() == index_name.lower()

    @property
    def required_columns(self) -> List[str]:
        """Columns merge-on-read must see in every scanned row (grid
        dimensions for cell routing, key columns for tombstones) — used
        to widen RCFile column pruning on delta-resident full scans."""
        names = list(self.policy.names)
        if self.key_columns:
            names.extend(c for c in self.key_columns if c not in names)
        return names

    # -------------------------------------------------------------- routing
    def row_cell(self, row: Sequence[Any]) -> str:
        return self.policy.key_of_row([row[p] for p in self.dim_positions])

    def row_key(self, row: Sequence[Any]) -> Optional[Tuple]:
        if self.key_positions is None:
            return None
        return tuple(row[p] for p in self.key_positions)

    def key_cell(self, key: Sequence[Any]) -> str:
        assert self._dims_in_key is not None
        return self.policy.key_of_row([key[p] for p in self._dims_in_key])

    def _cell_coords(self, cell: str) -> List[int]:
        labels = cell.split("_")
        if len(labels) != len(self.policy):
            raise DeltaError(
                f"delta cell {cell!r} has {len(labels)} segments, policy "
                f"has {len(self.policy)} dimensions")
        return [dim.cell_of(dim.parse_label(label))
                for dim, label in zip(self.policy.dimensions, labels)]

    # --------------------------------------------------------------- ingest
    def ingest(self, ops: Sequence[Tuple[str, Sequence[Any]]]) -> int:
        """Apply a batch of ``("insert"|"upsert"|"delete", payload)`` ops.

        Payloads are full rows for insert/upsert and key-column values
        for delete.  The batch is sequenced, grouped per grid cell, and
        written with one read-modify-write per touched cell plus one
        state update — all under the binding lock, so concurrent
        writers serialize like any other single-logical-writer DDL.
        """
        if not ops:
            return 0
        schema = self.table.schema
        with self._lock:
            grouped: Dict[str, List[tuple]] = {}
            for kind, payload in ops:
                self._seq += 1
                if kind == "insert":
                    schema.validate_row(payload)
                    row = tuple(payload)
                    grouped.setdefault(self.row_cell(row), []).append(
                        (self._seq, INSERT, self.row_key(row), row))
                elif kind == "upsert":
                    self._require_keys(kind)
                    schema.validate_row(payload)
                    row = tuple(payload)
                    grouped.setdefault(self.row_cell(row), []).append(
                        (self._seq, UPSERT, self.row_key(row), row))
                elif kind == "delete":
                    self._require_keys(kind)
                    key = tuple(payload)
                    if len(key) != len(self.key_columns):
                        raise DeltaError(
                            f"delete key has {len(key)} values; "
                            f"key_columns is {list(self.key_columns)}")
                    grouped.setdefault(self.key_cell(key), []).append(
                        (self._seq, DELETE, key, None))
                else:
                    raise DeltaError(f"unknown delta op kind {kind!r}")
            for cell in sorted(grouped):
                existing = self.delta_store.get_cell(cell) or []
                self.delta_store.put_cell(cell,
                                          list(existing) + grouped[cell])
                self._resident.add(cell)
            self._resident_ops += len(ops)
            self._save_state()
            # Delta-resident cells can no longer be answered from any
            # summarized ancestor: demote the touched cells' chains so
            # pyramid readers fall back to exact per-cell handling (the
            # markers are recomputed at compaction).
            from repro.pyramid import PYRAMID_STATE_KEY, demote_cells
            if PYRAMID_STATE_KEY in self.index.state:
                demote_cells(self.session, self.index, sorted(grouped))
        return len(ops)

    def _require_keys(self, kind: str) -> None:
        if self.key_columns is None:
            raise DeltaError(
                f"{kind} requires the binding to be attached with "
                "key_columns (inserts are the only keyless op)")

    def _save_state(self) -> None:
        self.delta_store.put_state({
            "seq": self._seq,
            "cells": sorted(self._resident),
            "ops": self._resident_ops,
            "key_columns": list(self.key_columns)
            if self.key_columns else None,
        })

    # ------------------------------------------------------------ compaction
    def snapshot(self, cells: Optional[Sequence[str]] = None
                 ) -> Tuple[int, Dict[str, List[tuple]]]:
        """Consistent view for the compactor: ``(watermark, cell -> ops)``.

        ``watermark`` is the current sequence number; every snapshotted
        op has ``seq <= watermark`` and ops ingested after the snapshot
        stay resident through :meth:`prune`.
        """
        with self._lock:
            chosen = sorted(self._resident) if cells is None \
                else [c for c in sorted(set(cells)) if c in self._resident]
            snapshot = {}
            for cell in chosen:
                ops = self.delta_store.get_cell(cell)
                if ops:
                    snapshot[cell] = list(ops)
            return self._seq, snapshot

    def prune(self, cells: Sequence[str], watermark: int) -> int:
        """Drop every op with ``seq <= watermark`` from ``cells`` (the
        compactor's final step, after the folded base values carry the
        watermark).  Returns the number of ops removed."""
        removed = 0
        with self._lock:
            for cell in sorted(set(cells)):
                ops = self.delta_store.get_cell(cell) or []
                keep = [op for op in ops if op[0] > watermark]
                removed += len(ops) - len(keep)
                if keep:
                    self.delta_store.put_cell(cell, keep)
                else:
                    self.delta_store.delete_cell(cell)
                    self._resident.discard(cell)
            self._resident_ops = max(0, self._resident_ops - removed)
            self._save_state()
        return removed

    def clear(self) -> None:
        """Drop every delta op and the durable state (DROP TABLE path)."""
        with self._lock:
            self.delta_store.clear()
            self._resident.clear()
            self._resident_ops = 0
            self._seq = 0

    # ---------------------------------------------------------- merge-on-read
    def overlapping_cells(self, intervals: Optional[Dict[str, Optional[
            Interval]]] = None) -> List[str]:
        """Resident cells overlapping a query region (sorted).  Unlike the
        base grid search this is *not* clamped to build-time bounds, so
        delta cells outside the base grid still surface.  ``None`` means
        the whole table (full scans)."""
        cells = self.resident_cells
        if intervals is None:
            return list(cells)
        chosen = []
        for cell in cells:
            coords = self._cell_coords(cell)
            if all(dim.overlaps_cell(intervals.get(dim.name.lower()), k)
                   for dim, k in zip(self.policy.dimensions, coords)):
                chosen.append(cell)
        return chosen

    def build_overlay(self, intervals: Optional[Dict[str, Optional[
            Interval]]] = None) -> Optional["DeltaOverlay"]:
        """The resolved merge-on-read view for a query region, or None
        when no resident cell overlaps it.

        Ordering contract with the compactor: the delta cells are read
        *before* the base values whose ``compacted_seq`` watermarks gate
        them, while the compactor writes the watermarked base value
        before pruning — so a concurrently folded op is either still in
        the delta (and then skipped by the watermark) or already in the
        base, never both and never neither.
        """
        from repro.delta.overlay import DeltaOverlay, resolve_ops
        cells = self.overlapping_cells(intervals)
        if not cells:
            return None
        delta_cells = self.delta_store.load_cells(cells)
        base_values = self.dgf_store.multi_get(cells)
        suppress: Dict[str, frozenset] = {}
        pending: Dict[str, List[tuple]] = {}
        for cell in cells:
            ops = delta_cells.get(cell, [])
            base = base_values.get(cell)
            watermark = base.compacted_seq if base is not None else 0
            doomed, rows = resolve_ops(ops, watermark, self.row_key)
            if doomed:
                suppress[cell] = frozenset(doomed)
            if rows:
                pending[cell] = rows
        return DeltaOverlay(table=self.table.name,
                            schema=self.table.schema,
                            binding=self,
                            suppress=suppress,
                            pending=pending,
                            num_cells=len(cells),
                            probes=2 * len(cells))
