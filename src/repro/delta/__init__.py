"""Streaming ingestion: DualTable-style hybrid delta store for DGFIndex.

The paper's smart grid is a write-heavy stream (11B readings from 14M
meters), but the base write paths are bulk ``build`` and batch
``append_with_dgf`` — a live service cannot absorb late or corrected
meter readings without staging a whole append generation.  Following
*DualTable: A Hybrid Storage Model for Update Optimization in Hive*
(PAPERS.md), this package lands streamed inserts/upserts/deletes in the
KV side of the hybrid HDFS+KV store, merges base slices with resident
deltas at read time, and folds deltas back into slices in the background:

* :class:`~repro.delta.store.DeltaStore` — GFU-keyed delta cells in the
  KV store (``delta:<table>:<index>:<gfukey>``), so the grid pruning of
  Algorithm 3 applies to streamed data exactly as to base slices.
* :class:`~repro.delta.store.DeltaBinding` — the session-side attachment
  of one streaming delta to one (table, DGF index) pair; owns the
  sequence counter and the resident-cell registry.
* :class:`~repro.delta.overlay.DeltaOverlay` /
  :class:`~repro.delta.overlay.DeltaOverlayInputFormat` — the versioned
  merge-on-read layer: base splits are filtered against delta tombstones
  and per-cell synthetic splits append the surviving delta rows, on both
  the row and vectorized scan paths.
* :class:`~repro.delta.compact.Compactor` — a
  :class:`~repro.workflow.dag.Workflow` that folds resident deltas into
  new slices (reusing the append build job for insert-only cells and
  rewriting mixed cells), swaps slice locations atomically with a
  ``compacted_seq`` watermark, and prunes the folded ops.
* :class:`~repro.delta.writer.StreamingWriter` — the bounded ingest
  admission path beside :class:`~repro.service.queryservice.QueryService`
  query admission.

Correctness contract (`tests/test_delta_differential.py`): queries over
base+delta return rows byte-identical to the same logical data bulk-built
into base alone, at workers {1,4,8}, vectorized on/off, before, during
and after compaction — and all per-query observables (rows, QueryStats,
normalized traces) are byte-identical across worker counts and cache
settings within any one delta state.
"""

from repro.delta.compact import CompactionReport, Compactor
from repro.delta.overlay import (DELTA_ROWS_META_KEY, DeltaOverlay,
                                 DeltaOverlayInputFormat)
from repro.delta.store import DeltaBinding, DeltaStore
from repro.delta.writer import StreamingWriter

__all__ = [
    "CompactionReport",
    "Compactor",
    "DELTA_ROWS_META_KEY",
    "DeltaBinding",
    "DeltaOverlay",
    "DeltaOverlayInputFormat",
    "DeltaStore",
    "StreamingWriter",
]
