"""Merge-on-read: compose base slices with resident delta ops in-scan.

DualTable reads are the union of the HDFS base and the KV delta; here
that composition happens inside the scan pipeline so everything
downstream (filters, aggregation, vectorized kernels, tracing) is
unchanged:

* **Tombstone filtering** — base rows whose primary key was upserted or
  deleted after the cell's ``compacted_seq`` watermark are suppressed as
  the record reader yields them (per-row cell routing via the grid
  policy, so a split covering several cells filters each against its own
  cell's tombstones).
* **Synthetic delta splits** — each resident cell overlapping the query
  region contributes one extra :class:`FileSplit` (``delta://`` path, no
  bytes on HDFS) carrying its surviving delta rows in sequence order, so
  delta rows flow through the same mapper/combiner machinery as base
  rows and every engine observable stays deterministic.

The vectorized path has a matching batch reader
(:func:`repro.vector.decode.batch_reader_for`): overlays without
tombstones delegate base splits to the underlying columnar decoder
(identical preads); overlays with tombstones and all synthetic splits
materialize row-path output into :class:`ColumnBatch` columns — the
strict fallback, still pread-identical to the row engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, TYPE_CHECKING)

from repro.mapreduce.splits import FileSplit, InputFormat
from repro.storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.delta.store import DeltaBinding

#: split metadata key marking a synthetic delta split; its value is the
#: tuple of surviving delta rows the mapper must read.
DELTA_ROWS_META_KEY = "delta_rows"


def resolve_ops(ops: Sequence[tuple], watermark: int,
                key_of_row: Callable[[Sequence[Any]], Optional[Tuple]]
                ) -> Tuple[set, List[tuple]]:
    """Collapse one cell's op log into ``(tombstone keys, pending rows)``.

    Ops at or below ``watermark`` are already folded into the base and
    skipped.  An upsert is delete(key) + insert(row): it tombstones every
    base row with that key and replaces any still-pending delta row with
    the same key; pending rows keep ingest (sequence) order.
    """
    doomed: set = set()
    pending: List[Tuple[int, tuple]] = []
    for seq, kind, key, row in ops:
        if seq <= watermark:
            continue
        if kind == "i":
            pending.append((seq, row))
        else:  # upsert or delete
            doomed.add(key)
            pending = [(s, r) for s, r in pending if key_of_row(r) != key]
            if kind == "u":
                pending.append((seq, row))
    return doomed, [row for _seq, row in pending]


@dataclass
class DeltaOverlay:
    """The resolved merge-on-read view of one query region.

    Built by :meth:`~repro.delta.store.DeltaBinding.build_overlay`;
    immutable for the duration of one query plan."""

    table: str
    schema: Schema
    binding: "DeltaBinding"
    #: cell -> frozen set of primary keys to suppress from base rows
    suppress: Dict[str, frozenset] = field(default_factory=dict)
    #: cell -> surviving delta rows in sequence order
    pending: Dict[str, List[tuple]] = field(default_factory=dict)
    #: resident cells probed for this region (>= the affected cells)
    num_cells: int = 0
    #: logical KV gets charged to the plan for the probe
    probes: int = 0

    @property
    def num_rows(self) -> int:
        return sum(len(rows) for rows in self.pending.values())

    @property
    def num_suppressed(self) -> int:
        return sum(len(keys) for keys in self.suppress.values())

    @property
    def has_suppression(self) -> bool:
        return bool(self.suppress)

    def row_suppressed(self, row: Sequence[Any]) -> bool:
        """Is this base row tombstoned?  Routes the row to its grid cell
        first, so only its own cell's tombstones apply."""
        doomed = self.suppress.get(self.binding.row_cell(row))
        return bool(doomed) and self.binding.row_key(row) in doomed

    def synthetic_splits(self) -> List[FileSplit]:
        """One zero-byte split per cell with pending rows, sorted by cell
        key for determinism; appended after the base splits."""
        splits = []
        for cell in sorted(self.pending):
            rows = self.pending[cell]
            split = FileSplit(path=f"delta://{self.table.lower()}/{cell}",
                              start=0, length=0)
            split.meta[DELTA_ROWS_META_KEY] = tuple(rows)
            splits.append(split)
        return splits


class DeltaOverlayInputFormat(InputFormat):
    """Wraps the base input format with tombstone filtering and synthetic
    delta splits.  ``schema`` mirrors the inner format's so downstream
    consumers (job builder, vector compiler) are oblivious."""

    def __init__(self, inner: InputFormat, overlay: DeltaOverlay):
        self.inner = inner
        self.overlay = overlay
        self.schema: Schema = inner.schema

    def get_splits(self, fs, paths) -> List[FileSplit]:
        return (self.inner.get_splits(fs, paths)
                + self.overlay.synthetic_splits())

    def read_split(self, fs, split: FileSplit
                   ) -> Iterator[Tuple[Any, tuple]]:
        rows = split.meta.get(DELTA_ROWS_META_KEY)
        if rows is not None:
            for i, row in enumerate(rows):
                yield i, row
            return
        if not self.overlay.has_suppression:
            yield from self.inner.read_split(fs, split)
            return
        for offset, row in self.inner.read_split(fs, split):
            if not self.overlay.row_suppressed(row):
                yield offset, row
