"""Workload data generators: smart-grid meter data and TPC-H lineitem."""

from repro.data.meter import (METER_SCHEMA, USER_INFO_SCHEMA,
                              MeterDataConfig, MeterDataGenerator)
from repro.data.tpch import LINEITEM_SCHEMA, LineitemGenerator, q6_parameters

__all__ = [
    "METER_SCHEMA",
    "USER_INFO_SCHEMA",
    "MeterDataConfig",
    "MeterDataGenerator",
    "LINEITEM_SCHEMA",
    "LineitemGenerator",
    "q6_parameters",
]
