"""Smart-grid meter data generator.

Reproduces the distributional facts the paper states about the Zhejiang
Grid dataset (Section 5.2):

* 17 fields per record: userId, regionId, collection date, power consumed,
  positive/reverse active total electricity (PATE) with four rates each,
  and other metrics;
* distinct values: userId 14 million (scaled down by a configurable
  factor), regionId 11, time 30 (one month, daily in the experiments);
* records with the same time stamp are stored together — the data arrives
  sorted by collection time ("which obeys the rules of meter data"), which
  is exactly why the Compact Index performs better here than on TPC-H;
* a user-information archive table (~2 GB in the paper) joined against the
  fact table by the join workload.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.common.rng import DeterministicRNG
from repro.storage.schema import DataType, Schema

#: The paper's meter-data schema (17 fields, Figure 1 + Section 5.2).
METER_SCHEMA = Schema.of(
    ("userid", DataType.BIGINT),
    ("regionid", DataType.INT),
    ("ts", DataType.DATE),              # collection date
    ("powerconsumed", DataType.DOUBLE),
    ("pate_rate1", DataType.DOUBLE),    # positive active total electricity
    ("pate_rate2", DataType.DOUBLE),
    ("pate_rate3", DataType.DOUBLE),
    ("pate_rate4", DataType.DOUBLE),
    ("rate_rate1", DataType.DOUBLE),    # reverse active total electricity
    ("rate_rate2", DataType.DOUBLE),
    ("rate_rate3", DataType.DOUBLE),
    ("rate_rate4", DataType.DOUBLE),
    ("voltage", DataType.DOUBLE),
    ("current", DataType.DOUBLE),
    ("powerfactor", DataType.DOUBLE),
    ("meterstatus", DataType.INT),
    ("collectorid", DataType.INT),
)

USER_INFO_SCHEMA = Schema.of(
    ("userid", DataType.BIGINT),
    ("username", DataType.STRING),
    ("regionid", DataType.INT),
    ("address", DataType.STRING),
    ("tariffclass", DataType.INT),
    ("installdate", DataType.DATE),
)


@dataclass(frozen=True)
class MeterDataConfig:
    """Scale knobs (defaults give ~60k records, quick for tests/benches).

    The paper's real dataset: 14 M users x 11 regions x 30 days (plus
    intra-day readings) = ~11 B records.  ``paper_records`` is used by
    experiments to derive the cost model's data_scale.
    """

    num_users: int = 2000
    num_regions: int = 11
    num_days: int = 30
    readings_per_day: int = 1
    start_date: str = "2012-12-01"
    seed: int = 20140801

    @property
    def total_records(self) -> int:
        return self.num_users * self.num_days * self.readings_per_day

    @property
    def paper_records(self) -> int:
        return 11_000_000_000

    @property
    def data_scale(self) -> float:
        return self.paper_records / self.total_records


class MeterDataGenerator:
    """Deterministic generator for meter data and the user-info archive."""

    def __init__(self, config: MeterDataConfig = MeterDataConfig()):
        self.config = config
        self._rng = DeterministicRNG(config.seed)
        # Every user has a fixed region (users live somewhere) and a stable
        # consumption profile, which gives realistic per-region skew.
        region_rng = self._rng.child("regions")
        self._user_region = [region_rng.randint(0, config.num_regions - 1)
                             for _ in range(config.num_users)]
        profile_rng = self._rng.child("profiles")
        self._user_base_load = [abs(profile_rng.gauss(12.0, 6.0)) + 0.5
                                for _ in range(config.num_users)]

    # ----------------------------------------------------------- meter data
    def iter_rows(self) -> Iterator[Tuple]:
        """Yield meter records in collection order (sorted by time stamp)."""
        cfg = self.config
        start = datetime.date.fromisoformat(cfg.start_date)
        for day in range(cfg.num_days):
            date_text = (start + datetime.timedelta(days=day)).isoformat()
            day_rng = self._rng.child(f"day-{day}")
            for reading in range(cfg.readings_per_day):
                for user in range(cfg.num_users):
                    yield self._record(user, date_text, day_rng)

    def rows_for_days(self, first_day: int, num_days: int) -> List[Tuple]:
        """Records of a consecutive day range (used by append experiments)."""
        cfg = self.config
        start = datetime.date.fromisoformat(cfg.start_date)
        out: List[Tuple] = []
        for day in range(first_day, first_day + num_days):
            date_text = (start + datetime.timedelta(days=day)).isoformat()
            day_rng = self._rng.child(f"day-{day}")
            for _reading in range(cfg.readings_per_day):
                for user in range(cfg.num_users):
                    out.append(self._record(user, date_text, day_rng))
        return out

    def _record(self, user: int, date_text: str,
                rng: DeterministicRNG) -> Tuple:
        base = self._user_base_load[user]
        consumed = round(max(0.0, rng.gauss(base, base * 0.25)), 2)
        pate = [round(consumed * share, 2)
                for share in (0.45, 0.25, 0.2, 0.1)]
        reverse = [round(rng.uniform(0.0, 0.3), 2) for _ in range(4)]
        return (
            user,
            self._user_region[user],
            date_text,
            consumed,
            *pate,
            *reverse,
            round(rng.uniform(218.0, 242.0), 1),   # voltage
            round(rng.uniform(0.1, 40.0), 2),      # current
            round(rng.uniform(0.85, 1.0), 3),      # power factor
            0 if rng.random() > 0.001 else 1,      # meter status flag
            user % 977,                            # collector id
        )

    # ---------------------------------------------------------- archive data
    def user_info_rows(self) -> List[Tuple]:
        cfg = self.config
        rng = self._rng.child("archive")
        rows = []
        for user in range(cfg.num_users):
            install = datetime.date(2008, 1, 1) + datetime.timedelta(
                days=rng.randint(0, 1500))
            rows.append((
                user,
                f"user_{user:08d}",
                self._user_region[user],
                f"{rng.randint(1, 999)} Grid Road, District "
                f"{self._user_region[user]}",
                rng.randint(1, 4),
                install.isoformat(),
            ))
        return rows

    # ------------------------------------------------------------ selectivity
    def user_range_for_selectivity(self, fraction: float) -> Tuple[int, int]:
        """A userId range matching ``fraction`` of users — the paper varies
        selectivity via the userId predicate (point / 5% / 12%)."""
        width = max(1, int(round(self.config.num_users * fraction)))
        low = self.config.num_users // 7  # away from the domain edge
        high = min(low + width, self.config.num_users)
        return low, high
