"""TPC-H lineitem generator (dbgen-faithful domains, scaled down).

Used for the paper's general-case experiments (Section 5.4, Tables 5/6 and
Figure 18, TPC-H Q6).  The crucial property, noted by the paper, is that
lineitem rows are *evenly scattered* — unlike meter data they carry no
physical time ordering, which is why the Compact Index cannot filter any
split on this dataset.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.common.rng import DeterministicRNG
from repro.storage.schema import DataType, Schema

LINEITEM_SCHEMA = Schema.of(
    ("l_orderkey", DataType.BIGINT),
    ("l_partkey", DataType.BIGINT),
    ("l_suppkey", DataType.BIGINT),
    ("l_linenumber", DataType.INT),
    ("l_quantity", DataType.DOUBLE),
    ("l_extendedprice", DataType.DOUBLE),
    ("l_discount", DataType.DOUBLE),
    ("l_tax", DataType.DOUBLE),
    ("l_returnflag", DataType.STRING),
    ("l_linestatus", DataType.STRING),
    ("l_shipdate", DataType.DATE),
    ("l_commitdate", DataType.DATE),
    ("l_receiptdate", DataType.DATE),
    ("l_shipinstruct", DataType.STRING),
    ("l_shipmode", DataType.STRING),
    ("l_comment", DataType.STRING),
)

_SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
_SHIP_INSTRUCTIONS = ("DELIVER IN PERSON", "COLLECT COD", "NONE",
                      "TAKE BACK RETURN")
_COMMENT_WORDS = ("carefully", "quickly", "furiously", "deposits", "foxes",
                  "packages", "accounts", "requests", "pending", "final")

#: dbgen date domain: shipdate in [STARTDATE+1, ENDDATE-151+121]
_START_DATE = datetime.date(1992, 1, 1)
_DATE_SPAN_DAYS = 2526  # ~1992-01-02 .. 1998-12-01, as in dbgen


@dataclass(frozen=True)
class TPCHConfig:
    """``num_orders`` orders x 1-7 lineitems each (dbgen's distribution)."""

    num_orders: int = 15000
    seed: int = 19920101

    @property
    def paper_records(self) -> int:
        return 4_100_000_000  # the paper's lineitem row count


class LineitemGenerator:
    """Deterministic lineitem rows with dbgen value domains."""

    def __init__(self, config: TPCHConfig = TPCHConfig()):
        self.config = config
        self._rng = DeterministicRNG(config.seed)

    def iter_rows(self) -> Iterator[Tuple]:
        rng = self._rng.child("lineitem")
        for order in range(1, self.config.num_orders + 1):
            for line in range(1, rng.randint(1, 7) + 1):
                yield self._record(order, line, rng)

    def _record(self, orderkey: int, linenumber: int,
                rng: DeterministicRNG) -> Tuple:
        quantity = float(rng.randint(1, 50))
        partkey = rng.randint(1, 200000)
        extended = round(quantity * (900.0 + (partkey % 1000) + 100.0), 2)
        discount = round(rng.randint(0, 10) / 100.0, 2)
        tax = round(rng.randint(0, 8) / 100.0, 2)
        shipdate = _START_DATE + datetime.timedelta(
            days=rng.randint(1, _DATE_SPAN_DAYS))
        commitdate = shipdate + datetime.timedelta(days=rng.randint(-30, 60))
        receiptdate = shipdate + datetime.timedelta(days=rng.randint(1, 30))
        returnflag = "R" if receiptdate <= datetime.date(1995, 6, 17) \
            else rng.choice(("A", "N"))
        linestatus = "F" if shipdate <= datetime.date(1995, 6, 17) else "O"
        comment = " ".join(rng.choice(_COMMENT_WORDS)
                           for _ in range(rng.randint(2, 5)))
        return (
            orderkey,
            partkey,
            rng.randint(1, 10000),
            linenumber,
            quantity,
            extended,
            discount,
            tax,
            returnflag,
            linestatus,
            shipdate.isoformat(),
            commitdate.isoformat(),
            receiptdate.isoformat(),
            rng.choice(_SHIP_INSTRUCTIONS),
            rng.choice(_SHIP_MODES),
            comment,
        )


def q6_parameters(seed: int = 3) -> Dict[str, object]:
    """Standard Q6 substitution parameters (TPC-H 2.18, default stream):
    DATE = 1994-01-01, DISCOUNT = 0.06, QUANTITY = 24."""
    return {
        "date_lo": "1994-01-01",
        "date_hi": "1995-01-01",
        "discount_lo": 0.05,
        "discount_hi": 0.07,
        "quantity": 24,
    }


def q6_sql(params: Dict[str, object]) -> str:
    """TPC-H Q6 in the HiveQL subset (BETWEEN expanded to closed bounds)."""
    return (
        "SELECT sum(l_extendedprice * l_discount) FROM lineitem "
        f"WHERE l_shipdate >= '{params['date_lo']}' "
        f"AND l_shipdate < '{params['date_hi']}' "
        f"AND l_discount >= {params['discount_lo']} "
        f"AND l_discount <= {params['discount_hi']} "
        f"AND l_quantity < {params['quantity']}"
    )
