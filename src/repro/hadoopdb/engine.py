"""The HadoopDB engine: hash partitioning, query pushdown, MR collection.

Deployment follows the paper's Section 5.2 exactly:

* GlobalHasher partitions meter data into one partition per node (28) by
  userId; LocalHasher splits each partition into chunk databases;
* each chunk gets a multi-column index on (userId, regionId, time);
* the user-info archive table is partitioned by userId per node and then
  replicated "to all the databases of current node";
* a query is pushed into every chunk database, and a MapReduce job collects
  the partial results (the paper extends HadoopDB's task code the same way
  because SMS only supports specific queries).

The time model encodes the paper's two stated degradation mechanisms:
chunk queries on one node *share that node's disk* (resource competition),
and batch reads through the RDBMS page path are slower than HDFS streaming.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import HadoopDBError
from repro.hadoopdb.localdb import PAGE_BYTES, ChunkQueryStats, LocalDB
from repro.hiveql.predicates import Interval
from repro.mapreduce.cost import TimeBreakdown


@dataclass(frozen=True)
class HadoopDBConfig:
    """Cluster shape + page-path parameters (paper-scale defaults)."""

    num_nodes: int = 28
    chunks_per_node: int = 4          # scaled down from the paper's 38
    paper_chunks_per_node: int = 38   # for per-chunk overhead accounting
    cores_per_node: int = 8
    #: RDBMS page-path read bandwidth — the "low batch reading performance
    #: of RDBMS" the paper cites; deliberately below HDFS streaming speed.
    page_read_bandwidth: float = 20e6
    cpu_seconds_per_row: float = 20e-6
    #: per-chunk query dispatch overhead (connection + planning)
    chunk_overhead_seconds: float = 0.2
    #: the collecting MapReduce job's launch overhead
    collect_launch_seconds: float = 15.0
    #: rows per heap page at paper scale (8 KiB pages / ~100 B rows)
    rows_per_page: int = 80
    #: matched rows cluster in runs of roughly this many rows (users report
    #: in fixed collector order within each time slot), which lets a bitmap
    #: heap scan skip page runs; divides the per-page hit exponent.
    heap_cluster_factor: float = 10.0


@dataclass
class HadoopDBQueryResult:
    rows: List[Tuple]
    stats: ChunkQueryStats
    time: TimeBreakdown
    per_node_stats: List[ChunkQueryStats] = field(default_factory=list)


def _stable_hash(value: Any) -> int:
    return zlib.crc32(repr(value).encode("utf-8"))


class HadoopDB:
    """The full multi-node deployment."""

    def __init__(self, schema, index_columns: Iterable[str],
                 partition_column: str,
                 config: HadoopDBConfig = HadoopDBConfig(),
                 data_scale: float = 1.0,
                 row_bytes: int = 100):
        self.schema = schema
        self.config = config
        self.data_scale = float(data_scale)
        self._partition_position = schema.index_of(partition_column)
        self._chunks: List[List[LocalDB]] = [
            [LocalDB(schema, list(index_columns), row_bytes=row_bytes)
             for _ in range(config.chunks_per_node)]
            for _ in range(config.num_nodes)
        ]
        #: archive tables replicated per node: join key -> rows
        self._archive: List[Dict[Any, List[Tuple]]] = [
            dict() for _ in range(config.num_nodes)]
        self._loaded = False

    # ----------------------------------------------------------------- loads
    def load(self, rows: Iterable[Tuple]) -> int:
        """GlobalHasher (node) + LocalHasher (chunk), both on userId."""
        cfg = self.config
        buckets: List[List[List[Tuple]]] = [
            [[] for _ in range(cfg.chunks_per_node)]
            for _ in range(cfg.num_nodes)]
        count = 0
        for row in rows:
            key = row[self._partition_position]
            node = _stable_hash(key) % cfg.num_nodes
            chunk = (_stable_hash(key) // cfg.num_nodes) \
                % cfg.chunks_per_node
            buckets[node][chunk].append(tuple(row))
            count += 1
        for node, node_buckets in enumerate(buckets):
            for chunk, bucket in enumerate(node_buckets):
                db = self._chunks[node][chunk]
                db.bulk_load(bucket)
                db.build_index()
        self._loaded = True
        return count

    def load_archive(self, rows: Iterable[Tuple], key_position: int) -> int:
        """Partition the archive by userId per node, then replicate it to
        every chunk database of that node (the paper's layout); since the
        copies per node are identical we keep one hash map per node."""
        count = 0
        for row in rows:
            node = _stable_hash(row[key_position]) % self.config.num_nodes
            self._archive[node].setdefault(row[key_position],
                                           []).append(tuple(row))
            count += 1
        return count

    @property
    def total_rows(self) -> int:
        return sum(db.num_rows for node in self._chunks for db in node)

    # --------------------------------------------------------------- queries
    def aggregate(self, intervals: Dict[str, Interval],
                  value_position: int) -> HadoopDBQueryResult:
        """``SELECT sum(col) WHERE <intervals>`` pushed into every chunk."""
        def per_chunk(db: LocalDB):
            rows, stats = db.select(intervals)
            total = sum(row[value_position] for row in rows)
            return [(total, len(rows))], stats

        collected, stats, per_node = self._push_down(per_chunk)
        grand_total = sum(t for t, _n in collected)
        matched = sum(n for _t, n in collected)
        rows = [(grand_total if matched else None,)]
        return HadoopDBQueryResult(rows=rows, stats=stats,
                                   time=self._time(per_node),
                                   per_node_stats=per_node)

    def group_by(self, intervals: Dict[str, Interval], group_position: int,
                 value_position: int) -> HadoopDBQueryResult:
        def per_chunk(db: LocalDB):
            rows, stats = db.select(intervals)
            partial: Dict[Any, float] = {}
            for row in rows:
                key = row[group_position]
                partial[key] = partial.get(key, 0.0) + row[value_position]
            return list(partial.items()), stats

        collected, stats, per_node = self._push_down(per_chunk)
        merged: Dict[Any, float] = {}
        for key, value in collected:
            merged[key] = merged.get(key, 0.0) + value
        rows = sorted(merged.items())
        return HadoopDBQueryResult(rows=rows, stats=stats,
                                   time=self._time(per_node),
                                   per_node_stats=per_node)

    def join(self, intervals: Dict[str, Interval], key_position: int,
             project: Callable[[Tuple, Tuple], Tuple]
             ) -> HadoopDBQueryResult:
        """Fact-side selection joined against the node-local archive copy."""
        results: List[Tuple] = []
        per_node: List[ChunkQueryStats] = []
        total = ChunkQueryStats()
        for node, chunk_dbs in enumerate(self._chunks):
            node_stats = ChunkQueryStats()
            archive = self._archive[node]
            for db in chunk_dbs:
                rows, stats = db.select(intervals)
                node_stats.merge(stats)
                for row in rows:
                    for build_row in archive.get(row[key_position], ()):
                        results.append(project(row, build_row))
            per_node.append(node_stats)
            total.merge(node_stats)
        return HadoopDBQueryResult(rows=results, stats=total,
                                   time=self._time(per_node),
                                   per_node_stats=per_node)

    # -------------------------------------------------------------- plumbing
    def _push_down(self, per_chunk):
        if not self._loaded:
            raise HadoopDBError("load() data before querying")
        collected: List[Tuple] = []
        per_node: List[ChunkQueryStats] = []
        total = ChunkQueryStats()
        for chunk_dbs in self._chunks:
            node_stats = ChunkQueryStats()
            for db in chunk_dbs:
                rows, stats = per_chunk(db)
                collected.extend(rows)
                node_stats.merge(stats)
            per_node.append(node_stats)
            total.merge(node_stats)
        return collected, total, per_node

    def _time(self, per_node: List[ChunkQueryStats]) -> TimeBreakdown:
        """Paper-scale node time from measured selectivity *fractions*.

        Measured row counts cannot be scaled linearly (page granularity does
        not survive a x100000 rescale), so per node we take the matched and
        examined fractions and evaluate the access path at paper volume:

        * seq scan -> all heap pages stream through the shared disk;
        * index/bitmap scan -> expected touched pages follow the classic
          Yao formula ``P * (1 - (1 - f)^(rows_per_page/cluster))``;
        * CPU charges the examined fraction per core.

        The slowest node bounds the query (the collect job waits for all).
        """
        cfg = self.config
        slowest = 0.0
        overhead = (cfg.paper_chunks_per_node * cfg.chunk_overhead_seconds
                    / cfg.cores_per_node)
        for stats in per_node:
            if stats.rows_total == 0:
                continue
            node_rows = stats.rows_total * self.data_scale
            node_pages = node_rows / cfg.rows_per_page
            matched_fraction = stats.rows_matched / stats.rows_total
            examined_fraction = stats.rows_examined / stats.rows_total
            if stats.seq_scan:
                pages = node_pages
            else:
                exponent = max(1.0, cfg.rows_per_page
                               / cfg.heap_cluster_factor)
                pages = node_pages * (
                    1.0 - (1.0 - matched_fraction) ** exponent)
            io_seconds = pages * PAGE_BYTES / cfg.page_read_bandwidth
            cpu_seconds = (examined_fraction * node_rows
                           * cfg.cpu_seconds_per_row / cfg.cores_per_node)
            slowest = max(slowest, io_seconds + cpu_seconds + overhead)
        return TimeBreakdown(
            read_index_and_other=cfg.collect_launch_seconds,
            read_data_and_process=slowest)
