"""A miniature single-node row store standing in for PostgreSQL 8.4.

What matters for the paper's HadoopDB observations is the *access-path
behaviour* of a chunk database, so this store implements it faithfully:

* a composite B-tree-style index on (userId, regionId, time): range scans
  use the leading-column prefix, residual predicates are filtered after;
* bitmap-heap-scan page accounting: the pages actually touched are the
  distinct heap pages of the index-matching rows.  Because meter data
  arrives time-ordered while userId predicates select scattered users,
  touched pages approach the whole table as selectivity grows — the
  mechanism behind HadoopDB's degradation in Figures 9/10/12/13;
* a planner threshold that falls back to a sequential scan when the bitmap
  would touch most pages anyway.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import HadoopDBError
from repro.hiveql.predicates import Interval

PAGE_BYTES = 8192
#: above this fraction of touched pages the planner prefers a seq scan
SEQ_SCAN_THRESHOLD = 0.75


@dataclass
class ChunkQueryStats:
    """Measured access-path facts of one query on one chunk database."""

    rows_examined: int = 0
    rows_matched: int = 0
    rows_total: int = 0
    pages_touched: int = 0
    used_index: bool = False
    seq_scan: bool = False

    def merge(self, other: "ChunkQueryStats") -> None:
        self.rows_examined += other.rows_examined
        self.rows_matched += other.rows_matched
        self.rows_total += other.rows_total
        self.pages_touched += other.pages_touched
        self.used_index = self.used_index or other.used_index
        self.seq_scan = self.seq_scan or other.seq_scan


class LocalDB:
    """One chunk database: a heap of rows plus one composite index."""

    def __init__(self, schema, index_columns: Sequence[str],
                 row_bytes: int = 100):
        self.schema = schema
        self.index_columns = [schema.column(c).name for c in index_columns]
        self._index_positions = [schema.index_of(c) for c in index_columns]
        self._rows: List[Tuple] = []
        self._index: List[Tuple[Tuple, int]] = []   # (key tuple, rowid)
        self._index_dirty = False
        self.row_bytes = row_bytes
        self.rows_per_page = max(1, PAGE_BYTES // row_bytes)

    # ---------------------------------------------------------------- loading
    def bulk_load(self, rows) -> int:
        """Append rows (bulk load keeps arrival order, i.e. time order for
        meter data) and mark the index for rebuild."""
        count = 0
        for row in rows:
            self._rows.append(tuple(row))
            count += 1
        self._index_dirty = True
        return count

    def build_index(self) -> None:
        self._index = sorted(
            (tuple(row[p] for p in self._index_positions), rowid)
            for rowid, row in enumerate(self._rows))
        self._index_dirty = False

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    @property
    def num_pages(self) -> int:
        return (len(self._rows) + self.rows_per_page - 1) \
            // self.rows_per_page

    # ----------------------------------------------------------------- access
    def select(self, intervals: Dict[str, Interval],
               residual: Optional[Callable[[Tuple], bool]] = None
               ) -> Tuple[List[Tuple], ChunkQueryStats]:
        """Rows satisfying the per-column intervals (plus a residual filter),
        with access-path accounting."""
        if self._index_dirty:
            raise HadoopDBError("chunk index not built; call build_index()")
        stats = ChunkQueryStats(rows_total=self.num_rows)
        leading = self.index_columns[0].lower()
        lead_interval = intervals.get(leading)
        if lead_interval is None or (lead_interval.low is None
                                     and lead_interval.high is None):
            return self._seq_scan(intervals, residual, stats)
        candidate_ids = self._index_range(lead_interval)
        stats.used_index = True
        # Planner threshold on the *row fraction* (scale-invariant): when
        # most rows qualify anyway, a sequential scan beats the bitmap.
        if self.num_rows and \
                len(candidate_ids) / self.num_rows > SEQ_SCAN_THRESHOLD:
            return self._seq_scan(intervals, residual, stats)
        pages = {rowid // self.rows_per_page for rowid in candidate_ids}
        stats.pages_touched = len(pages)
        matched: List[Tuple] = []
        checks = [(self.schema.index_of(name), interval)
                  for name, interval in intervals.items()]
        for rowid in candidate_ids:
            row = self._rows[rowid]
            stats.rows_examined += 1
            if all(interval.contains(row[p]) for p, interval in checks) \
                    and (residual is None or residual(row)):
                matched.append(row)
        stats.rows_matched = len(matched)
        return matched, stats

    def _index_range(self, interval: Interval) -> List[int]:
        """Rowids whose leading index column falls in ``interval``."""
        keys = [entry[0][0] for entry in self._index]
        lo = 0
        if interval.low is not None:
            lo = (bisect.bisect_left(keys, interval.low)
                  if interval.low_inclusive
                  else bisect.bisect_right(keys, interval.low))
        hi = len(keys)
        if interval.high is not None:
            hi = (bisect.bisect_right(keys, interval.high)
                  if interval.high_inclusive
                  else bisect.bisect_left(keys, interval.high))
        return [self._index[i][1] for i in range(lo, hi)]

    def _seq_scan(self, intervals, residual,
                  stats: ChunkQueryStats) -> Tuple[List[Tuple],
                                                   ChunkQueryStats]:
        stats.seq_scan = True
        stats.pages_touched = self.num_pages
        checks = [(self.schema.index_of(name), interval)
                  for name, interval in intervals.items()]
        matched = []
        for row in self._rows:
            stats.rows_examined += 1
            if all(interval.contains(row[p]) for p, interval in checks) \
                    and (residual is None or residual(row)):
                matched.append(row)
        stats.rows_matched = len(matched)
        return matched, stats
