"""HadoopDB baseline (Abouzeid et al., VLDB 2009), as deployed in the
paper: PostgreSQL on every worker as the storage layer, Hadoop as the
computation layer, GlobalHasher/LocalHasher partitioning by userId, and a
multi-column (userId, regionId, time) index per chunk database.
"""

from repro.hadoopdb.localdb import LocalDB, ChunkQueryStats
from repro.hadoopdb.engine import HadoopDB, HadoopDBConfig

__all__ = ["LocalDB", "ChunkQueryStats", "HadoopDB", "HadoopDBConfig"]
