"""Bounded query log: the advisor's view of the served workload.

The serving layer already sees every query; this module gives it a place
to remember them.  Each executed DGF range query becomes one compact
:class:`LoggedQuery` — per-dimension coordinate spans of the query
region (in *primary*-grid coordinates, recorded before replica routing),
whether the pre-computed-header path applied, which layout served it,
and the measured simulated cost.  :class:`QueryLog` keeps a bounded,
thread-safe window of them, serializable to JSON for on-disk retention.

Capture is strictly observational: sessions without an attached log pay
nothing, and attaching one changes no query observable (proven by
``tests/test_advisor_differential.py``).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["LoggedQuery", "QueryLog", "region_spans"]


def region_spans(policy, bounds, intervals
                 ) -> Dict[str, Optional[Tuple[float, float]]]:
    """Per-dimension coordinate span of a query region.

    ``policy``/``bounds`` are the primary grid's splitting policy and
    built cell bounds; ``intervals`` the per-dimension predicate
    intervals (lower-case names, None = unconstrained).  Returns, per
    dimension, ``(low, high)`` in coordinate space clamped to the data
    extent, or None for unconstrained dimensions.  Duck-typed so the
    service layer needs no core imports at call time.
    """
    spans: Dict[str, Optional[Tuple[float, float]]] = {}
    for dim in policy.dimensions:
        key = dim.name.lower()
        interval = intervals.get(key)
        if interval is None:
            spans[key] = None
            continue
        k_min, k_max = bounds[key]
        origin = dim.to_coord(dim.origin)
        data_low = origin + k_min * dim.interval
        data_high = origin + (k_max + 1) * dim.interval
        low = dim.to_coord(interval.low) \
            if interval.low is not None else data_low
        high = dim.to_coord(interval.high) \
            if interval.high is not None else data_high
        low = min(max(low, data_low), data_high)
        high = min(max(high, data_low), data_high)
        spans[key] = (low, max(high, low))
    return spans


@dataclass(frozen=True)
class LoggedQuery:
    """One executed range query, compact enough to keep thousands of."""

    table: str
    index: str
    #: per-dimension coordinate span, None = unconstrained
    spans: Dict[str, Optional[Tuple[float, float]]]
    #: did the pre-computed-header (aggregation) path apply?
    agg_path: bool = True
    #: replica layout that served the query (None = no fleet)
    layout: Optional[str] = None
    #: measured simulated seconds (QueryStats.time.total)
    seconds: float = 0.0
    records_read: int = 0
    records_matched: int = 0
    output_records: int = 0
    weight: float = 1.0

    @property
    def widths(self) -> Dict[str, Optional[float]]:
        """Per-dimension range widths — :class:`QueryProfile` shape."""
        return {key: None if span is None else span[1] - span[0]
                for key, span in self.spans.items()}

    def to_dict(self) -> Dict[str, Any]:
        return {"table": self.table, "index": self.index,
                "spans": {key: None if span is None else list(span)
                          for key, span in self.spans.items()},
                "agg_path": self.agg_path, "layout": self.layout,
                "seconds": self.seconds,
                "records_read": self.records_read,
                "records_matched": self.records_matched,
                "output_records": self.output_records,
                "weight": self.weight}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LoggedQuery":
        return cls(table=data["table"], index=data["index"],
                   spans={key: None if span is None
                          else (float(span[0]), float(span[1]))
                          for key, span in data["spans"].items()},
                   agg_path=bool(data.get("agg_path", True)),
                   layout=data.get("layout"),
                   seconds=float(data.get("seconds", 0.0)),
                   records_read=int(data.get("records_read", 0)),
                   records_matched=int(data.get("records_matched", 0)),
                   output_records=int(data.get("output_records", 0)),
                   weight=float(data.get("weight", 1.0)))


class QueryLog:
    """Thread-safe bounded log of :class:`LoggedQuery` entries.

    Keeps the newest ``capacity`` entries (oldest dropped, counted in
    :attr:`dropped`); ``total`` counts every record ever seen, so drift
    detectors can tell "quiet" from "recycled".
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("QueryLog capacity must be positive")
        self.capacity = capacity
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total = 0
        self.dropped = 0

    def record(self, entry: LoggedQuery) -> None:
        with self._lock:
            if len(self._entries) == self.capacity:
                self.dropped += 1
            self._entries.append(entry)
            self.total += 1

    def entries(self) -> List[LoggedQuery]:
        with self._lock:
            return list(self._entries)

    def window(self, n: int) -> List[LoggedQuery]:
        """The newest ``n`` entries, oldest first."""
        with self._lock:
            entries = list(self._entries)
        return entries[-n:] if n > 0 else []

    def for_index(self, table: str, index: str,
                  window: Optional[int] = None) -> List[LoggedQuery]:
        """Entries for one index, optionally only the newest ``window``."""
        entries = self.entries() if window is None else self.window(window)
        return [e for e in entries
                if e.table.lower() == table.lower()
                and e.index.lower() == index.lower()]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -------------------------------------------------------- serialization
    def to_json(self) -> str:
        with self._lock:
            entries = list(self._entries)
            state = {"schema": "dgf-repro/querylog", "version": 1,
                     "capacity": self.capacity, "total": self.total,
                     "dropped": self.dropped,
                     "entries": [e.to_dict() for e in entries]}
        return json.dumps(state, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "QueryLog":
        state = json.loads(text)
        log = cls(capacity=state["capacity"])
        for entry in state["entries"]:
            log._entries.append(LoggedQuery.from_dict(entry))
        log.total = state.get("total", len(log._entries))
        log.dropped = state.get("dropped", 0)
        return log

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "QueryLog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
