"""The Advisor facade: observe → report → apply → auto-tune.

Public tuning surface over the whole advisor pipeline (reached via
``Connection.advisor()``): attach a bounded
:class:`~repro.service.querylog.QueryLog` to the session, turn the
logged workload into an :class:`~repro.core.dgf.advisor.AdvisorReport`
of divergent replica layouts priced by the router-aligned what-if
evaluator, apply the report through the replica fleet, and — online —
watch the log for workload drift and re-tune through a ``Workflow``
whose decisions land in ``advisor:*`` trace spans and metrics.

See ``docs/advisor.md`` for the walkthrough.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.errors import DGFError

__all__ = ["Advisor"]


class Advisor:
    """Workload-driven divergent tuning for one DGF index.

    ``observe()`` starts query-log capture; ``report()`` clusters the
    log and searches one specialist grid per cluster; ``apply()``
    registers the advised replica layouts (the PR 8 router then sends
    each query to its specialist); ``auto_tune()`` runs or schedules the
    drift-watching re-tune workflow.
    """

    #: how many ledgered advisor traces to keep
    TRACE_LIMIT = 32

    def __init__(self, session, table: str, index: str, *,
                 capacity: int = 1024, max_layouts: int = 2,
                 layout_prefix: str = "adv-",
                 drift_threshold: float = 0.2,
                 min_queries: int = 4, window: int = 256):
        self.session = session
        self.table = table
        self.index = index
        self.capacity = capacity
        self.max_layouts = max_layouts
        self.layout_prefix = layout_prefix
        self.drift_threshold = drift_threshold
        self.min_queries = min_queries
        self.window = window
        #: the report most recently applied by :meth:`apply`
        self.fitted = None
        #: ledgered root-level ``advisor:*`` traces (newest last)
        self.traces: List[Any] = []

    # ------------------------------------------------------------- observing
    def observe(self):
        """Attach (or reuse) the session's query log and return it.

        Observation is free for query observables: results, stats and
        normalized traces are byte-identical with the log attached
        (``tests/test_advisor_differential.py``).
        """
        from repro.service.querylog import QueryLog
        if self.session.query_log is None:
            self.session.query_log = QueryLog(capacity=self.capacity)
        return self.session.query_log

    def stop_observing(self) -> None:
        """Detach the session's query log (entries are kept in it)."""
        self.session.query_log = None

    @property
    def log(self):
        """The session's attached query log, or None."""
        return self.session.query_log

    def entries(self, window: Optional[int] = None):
        """Logged queries for this advisor's index, oldest first."""
        if self.session.query_log is None:
            return []
        return self.session.query_log.for_index(self.table, self.index,
                                                window=window)

    # -------------------------------------------------------------- reporting
    def _profiles(self, entries):
        from repro.core.dgf.advisor import QueryProfile
        return [QueryProfile(widths=entry.widths, weight=entry.weight,
                             agg_path=entry.agg_path)
                for entry in entries]

    def report(self, max_layouts: Optional[int] = None,
               window: Optional[int] = None):
        """Divergent-tuning report for the logged workload.

        Clusters the log's normalized query signatures, searches one GFU
        grid per cluster under the what-if objective (the router's exact
        cost formula), and returns an
        :class:`~repro.core.dgf.advisor.AdvisorReport`.
        """
        from repro.core.dgf import fleet
        from repro.core.dgf.advisor import PolicyAdvisor
        from repro.core.dgf.whatif import WhatIfEvaluator, stats_from_policy
        entries = self.entries(window=window)
        if not entries:
            raise DGFError(
                f"advisor has no logged queries for "
                f"{self.table}.{self.index}; call observe() and run the "
                f"workload first")
        with self._span("advisor:report", queries=len(entries)) as span:
            session = self.session
            table = session.metastore.get_table(self.table)
            index = session.metastore.get_index(self.table, self.index)
            store = session.dgf_store(table.name, index.name)
            policy = store.load_policy()
            bounds = store.load_bounds()
            stats = stats_from_policy(policy, bounds)
            try:
                totals = store.get_meta(fleet.STATS_META)
            except DGFError:
                # Fleetless indexes only get router stats once a fleet op
                # runs; compute them on first report.
                totals = fleet.refresh_stats(session, table, store,
                                             table.data_location)
            # A pyramid-enabled index answers inner regions in O(log n)
            # probes; price candidate grids with the same geometry so
            # fine grids are not penalized for probes they never pay.
            from repro.pyramid import pyramid_fanout, pyramid_state
            evaluator = WhatIfEvaluator(
                session.cost_model, stats,
                totals["records"], totals["bytes"],
                pyramid_fanout=pyramid_fanout(index)
                if pyramid_state(index) else None)
            advisor = PolicyAdvisor(table.schema, index.columns,
                                    cluster=session.cluster)
            primary_counts = {key: k_max - k_min + 1
                              for key, (k_min, k_max) in bounds.items()}
            report = advisor.advise_divergent(
                stats, self._profiles(entries), evaluator,
                max_layouts=max_layouts or self.max_layouts,
                layout_prefix=self.layout_prefix,
                table=table.name, index=index.name,
                primary_cell_counts=primary_counts)
            span.set("layouts", ",".join(
                layout.name for layout in report.layouts))
            span.set("predicted_speedup",
                     round(report.predicted_speedup, 4))
            session.metrics.counter(
                "advisor_reports_total",
                "divergent-tuning reports produced").inc(
                    table=table.name, index=index.name)
        return report

    # --------------------------------------------------------------- applying
    def apply(self, report=None) -> List[str]:
        """Build the report's replica layouts; returns the built names.

        Stale advisor layouts (same prefix, not in the report) are
        dropped first, so repeated re-tunes converge instead of
        accumulating replicas.  A same-named layout whose *registered*
        grid already matches the advice is kept as-is; one whose grid
        changed is dropped and rebuilt — layout names are positional
        (``adv-0``, ``adv-1``), so a re-tune routinely reuses a name for
        a different grid.  A ``"primary"`` pseudo-layout needs no build.
        The applied report becomes the drift baseline.
        """
        if report is None:
            report = self.report()
        with self._span("advisor:apply") as span:
            session = self.session
            from repro.core.dgf import fleet
            index = session.metastore.get_index(self.table, self.index)
            wanted = set(report.layout_names())
            stale = [name for name in fleet.registered_layouts(index)
                     if name.startswith(self.layout_prefix)
                     and name not in wanted]
            for name in stale:
                session.drop_layout(self.table, self.index, name)
            existing = fleet.registered_layouts(index)
            built = []
            for layout in report.layouts:
                if layout.name == "primary":
                    continue
                grid = dict(layout.advice.properties)
                current = existing.get(layout.name)
                if current is not None:
                    if current.grid_properties() == grid:
                        continue
                    session.drop_layout(self.table, self.index,
                                        layout.name)
                session.add_layout(self.table, self.index, layout.name,
                                   grid=grid)
                built.append(layout.name)
            span.set("built", ",".join(built) or "-")
            if stale:
                span.set("dropped", ",".join(sorted(stale)))
            self.fitted = report
            session.metrics.counter(
                "advisor_applies_total",
                "advisor reports applied to the fleet").inc(
                    table=self.table, index=self.index)
            session.metrics.gauge(
                "advisor_layouts",
                "advisor-built replica layouts").set(
                    len(wanted), table=self.table, index=self.index)
        return built

    # ------------------------------------------------------------------ drift
    def drift(self, window: Optional[int] = None) -> float:
        """Distribution distance between the recent log window and the
        fitted report: the weighted mean distance of each recent query's
        signature to its nearest fitted medoid.  ``inf`` before any
        :meth:`apply`; ``0.0`` on an empty window."""
        from repro.core.dgf.advisor import signature_distance
        if self.fitted is None:
            return float("inf")
        entries = self.entries(window=window or self.window)
        if not entries:
            return 0.0
        medoids = [medoid for layout in self.fitted.layouts
                   for medoid in layout.medoids]
        if not medoids:
            return float("inf")
        total = 0.0
        weight = 0.0
        for entry, signature in zip(entries, self._signatures(entries)):
            total += entry.weight * min(
                signature_distance(signature, medoid)
                for medoid in medoids)
            weight += entry.weight
        return total / max(weight, 1e-12)

    def _signatures(self, entries):
        from repro.core.dgf.advisor import signature_of
        from repro.core.dgf.whatif import stats_from_policy
        session = self.session
        index = session.metastore.get_index(self.table, self.index)
        store = session.dgf_store(self.table, self.index)
        stats = stats_from_policy(store.load_policy(),
                                  store.load_bounds())
        return [signature_of(profile, stats, list(index.columns))
                for profile in self._profiles(entries)]

    # ------------------------------------------------------------ online mode
    def retune_workflow(self, window: Optional[int] = None,
                        max_layouts: Optional[int] = None):
        """The drift-watching re-tune DAG: snapshot → decide → retune.

        ``decide`` measures :meth:`drift` over the recent window and
        chooses ``"insufficient"`` (too few logged queries),
        ``"stable"`` (drift under the threshold) or ``"retune"``;
        ``retune`` re-reports and re-applies only in the last case.
        Run it directly (``wf.run(session)``) or place it on a
        :class:`~repro.workflow.coordinator.Coordinator` via
        :meth:`auto_tune`.
        """
        from repro.workflow.dag import Workflow
        window = window or self.window

        def snapshot(context):
            entries = self.entries(window=window)
            return {"queries": len(entries)}

        def decide(context):
            entries = self.entries(window=window)
            drift = self.drift(window=window)
            self.session.metrics.gauge(
                "advisor_drift",
                "signature drift vs the fitted report").set(
                    0.0 if drift == float("inf") else drift,
                    table=self.table, index=self.index)
            if len(entries) < self.min_queries:
                decision = "insufficient"
            elif drift <= self.drift_threshold:
                decision = "stable"
            else:
                decision = "retune"
            return {"decision": decision, "drift": drift}

        def retune(context):
            decision = context["results"]["decide"]["decision"]
            outcome = decision
            if decision == "retune":
                report = self.report(max_layouts=max_layouts,
                                     window=window)
                built = self.apply(report)
                outcome = f"retuned:{len(built)}"
            self.session.metrics.counter(
                "advisor_retunes_total",
                "re-tune workflow outcomes").inc(
                    table=self.table, index=self.index,
                    outcome=outcome.split(":")[0])
            return {"outcome": outcome}

        return (Workflow("advisor-retune")
                .add("snapshot", snapshot)
                .add("decide", decide, after=("snapshot",))
                .add("retune", retune, after=("decide",), max_attempts=2))

    def auto_tune(self, coordinator=None, period: Optional[float] = None,
                  window: Optional[int] = None,
                  max_layouts: Optional[int] = None):
        """Online mode.  Without a coordinator: run one re-tune cycle now
        and return its :class:`WorkflowRun`.  With one: schedule the
        workflow every ``period`` simulated seconds and return the
        schedule entry."""
        self.observe()
        workflow = self.retune_workflow(window=window,
                                        max_layouts=max_layouts)
        if coordinator is None:
            return workflow.run(self.session)
        return coordinator.schedule(workflow, period=period or 3600.0)

    # ------------------------------------------------------------------ misc
    def status(self) -> Dict[str, Any]:
        """One-look summary: log depth, fitted layouts, current drift."""
        log = self.session.query_log
        drift = self.drift()
        return {"table": self.table, "index": self.index,
                "observing": log is not None,
                "logged": len(self.entries()),
                "log_total": log.total if log is not None else 0,
                "fitted": self.fitted is not None,
                "layouts": (self.fitted.layout_names()
                            if self.fitted is not None else []),
                "drift": None if drift == float("inf") else drift}

    @contextmanager
    def _span(self, name: str, **attrs):
        """An ``advisor:*`` span; when it is a root (no query running on
        this thread) the resulting one-span trace is ledgered in
        :attr:`traces` so online decisions stay auditable."""
        from repro.obs.trace import Trace
        tracer = self.session.tracer
        is_root = tracer.current() is None
        with tracer.span(name, **attrs) as span:
            yield span
        if is_root and tracer.enabled:
            self.traces.append(Trace(span))
            del self.traces[:-self.TRACE_LIMIT]
