"""The serving layer: concurrent query admission + GFU-metadata caching.

Two cooperating pieces sit between callers and one
:class:`~repro.hive.session.HiveSession`:

* :class:`~repro.service.queryservice.QueryService` — a bounded admission
  queue drained by a worker pool, so many statements run at once with
  byte-identical per-query results.
* :class:`~repro.service.cache.GfuMetadataCache` — an LRU + size-bounded
  cache of DGFIndex KV entries (GFU headers, slice locations, min/max
  bounds) that eliminates repeated KV-store reads on warm queries while
  replaying identical logical accounting.

The serving layer is also where workload-driven tuning lives: a bounded
:class:`~repro.service.querylog.QueryLog` records every executed DGF
range query, and the :class:`~repro.service.advisor.Advisor` facade
turns that log into divergent replica layouts (see ``docs/advisor.md``).

See ``docs/architecture.md`` ("The service and cache layers") and
``docs/api.md`` for how they surface through ``repro.connect()``.
"""

from repro.service.advisor import Advisor
from repro.service.cache import (CacheStats, GfuMetadataCache, MISSING)
from repro.service.querylog import LoggedQuery, QueryLog
from repro.service.queryservice import (DEFAULT_QUEUE_DEPTH, QueryService)

__all__ = [
    "Advisor",
    "CacheStats",
    "GfuMetadataCache",
    "LoggedQuery",
    "MISSING",
    "DEFAULT_QUEUE_DEPTH",
    "QueryLog",
    "QueryService",
]
