"""GFU-metadata cache: the serving layer's shield in front of the KV store.

The paper makes repeated multidimensional range queries cheap by answering
inner GFUs from pre-computed headers stored in HBase (Sec. 4.2-4.3), but
every query still pays one round of KV-store reads for the same GFU
headers, slice locations and min/max dimension-completion bounds
(Sec. 4.3/4.4).  Under the concurrent query service
(:mod:`repro.service.queryservice`), that metadata read is the hot path —
HAIL's observation that once index access is cheap, metadata lookup
dominates.  This cache absorbs it:

* **What is cached.**  Whole KV entries, keyed by their full store key:
  ``dgf:<table>:<index>:<gfukey>`` values (header + slice locations) and
  ``dgfmeta:<table>:<index>:<name>`` metadata (splitting policy, min/max
  bounds, pre-compute list) and ``dgfpyr:<table>:<index>:<node>``
  aggregation-pyramid nodes (:mod:`repro.pyramid`).  *Negative* entries —
  GFU keys probed by Algorithm 3 but absent from the store (empty grid
  cells), or pyramid nodes over empty blocks — are cached too, which
  matters because most candidate keys of a query region are empty.
* **Bounds.**  LRU with both an entry count and a byte budget
  (:func:`repro.mapreduce.engine.estimate_size`-based sizing, the same
  estimator the paper-size accounting uses).
* **Fill.**  Misses are fetched with one batched
  :meth:`~repro.kvstore.hbase.KVStore.multi_get` per lookup (see
  :meth:`repro.core.dgf.store.DgfStore.multi_get`), not per key.
* **Invalidation.**  Strict and automatic: the owning session registers
  :meth:`on_write` as a KV-store write listener, so *every* put/delete —
  index builds, ``append_with_dgf`` header merges, ``DROP INDEX`` clears —
  discards exactly the touched entries.  The session additionally drops
  whole namespaces on ``load_rows`` (appends), ``rebuild_index`` and
  ``DROP INDEX``/``DROP TABLE``.

Accounting contract (what keeps results byte-identical cache on/off):
query traces and simulated times always see the *logical* KV reads — a
cache hit replays the ``kv.gets`` trace counter the physical read would
have recorded (``KVStore.note_cached_gets``) — while ``KVStore.stats``
counts only *physical* operations.  The warm/cold benchmark and the
hit/miss metrics read the physical side; the differential harness
fingerprints the logical side.  Fill activity is traced with *detached*
``cache.fill`` spans (kept on a bounded ring, :meth:`recent_fills`) so the
per-query span tree stays identical whether the cache is present or not.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.units import MiB
from repro.mapreduce.engine import estimate_size
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer


class _Missing:
    """Sentinel cached for keys known to be absent from the KV store."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISSING>"


#: negative-cache marker; :meth:`GfuMetadataCache.lookup` returns it for
#: keys the cache knows are absent (callers filter it out).
MISSING = _Missing()

DEFAULT_MAX_ENTRIES = 8192
DEFAULT_MAX_BYTES = 4 * MiB
#: how many recent ``cache.fill`` spans to retain for inspection.
DEFAULT_FILL_SPANS = 32


@dataclass
class CacheStats:
    """Lifetime counters of one cache instance (also mirrored to the
    session's :class:`~repro.obs.metrics.MetricsRegistry` when given)."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "fills": self.fills, "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hit_rate}


def _kind_of(key: str) -> str:
    """Metric label: GFU entry, index metadata, pyramid node or
    streaming-delta entry."""
    if key.startswith("dgfmeta:"):
        return "meta"
    if key.startswith("dgfpyr:"):
        return "pyramid"
    if key.startswith(("delta:", "deltameta:")):
        return "delta"
    return "gfu"


def _entry_size(key: str, value: Any) -> int:
    """Byte estimate of one cache entry, GFUValue-aware."""
    if value is MISSING:
        payload = 8
    elif hasattr(value, "header") and hasattr(value, "locations"):
        # A GFUValue: size it like DgfStore.size_bytes does.
        payload = estimate_size((
            dict(value.header),
            [(loc.file, loc.start, loc.end) for loc in value.locations],
            getattr(value, "records", 0)))
    else:
        payload = estimate_size(value)
    return len(key) + payload


class GfuMetadataCache:
    """LRU + size-bounded cache of DGFIndex KV entries.

    Thread-safe: one lock guards the LRU structures; it is never held
    while talking to the KV store (lookups release it before the batched
    fill, write notifications acquire it after the store's own lock has
    been released), so no lock ordering cycle exists.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 metrics: Optional[MetricsRegistry] = None,
                 keep_fill_spans: int = DEFAULT_FILL_SPANS):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._lock = threading.Lock()
        #: key -> (value, size); insertion/access order = LRU order.
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self._fills: "deque[Span]" = deque(maxlen=max(1, keep_fill_spans))
        self._metrics = metrics

    # -------------------------------------------------------------- metrics
    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Attach (or replace) the registry hit/miss counters feed into."""
        self._metrics = metrics

    def _record(self, kind: str, hits: int, misses: int) -> None:
        self.stats.hits += hits
        self.stats.misses += misses
        metrics = self._metrics
        if metrics is None:
            return
        if hits:
            metrics.counter(
                "gfu_cache_hits_total",
                "GFU-metadata cache hits (KV reads avoided)").inc(
                    hits, kind=kind)
        if misses:
            metrics.counter(
                "gfu_cache_misses_total",
                "GFU-metadata cache misses (KV reads issued)").inc(
                    misses, kind=kind)

    def _publish_gauges(self) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        metrics.gauge("gfu_cache_entries",
                      "entries resident in the GFU-metadata cache").set(
                          len(self._entries))
        metrics.gauge("gfu_cache_bytes",
                      "estimated bytes resident in the GFU-metadata "
                      "cache").set(self._bytes)

    # --------------------------------------------------------------- lookup
    def lookup(self, keys: Iterable[str]
               ) -> Tuple[Dict[str, Any], List[str]]:
        """Probe the cache for ``keys``.

        Returns ``(hits, missing)``: ``hits`` maps each cached key to its
        value — :data:`MISSING` for negative entries — and ``missing``
        lists the keys (in probe order) the caller must fetch and
        :meth:`fill` back.
        """
        keys = list(keys)
        hits: Dict[str, Any] = {}
        missing: List[str] = []
        kind = _kind_of(keys[0]) if keys else "gfu"
        with self._lock:
            for key in keys:
                entry = self._entries.get(key)
                if entry is None:
                    missing.append(key)
                else:
                    self._entries.move_to_end(key)
                    hits[key] = entry[0]
            self._record(kind, len(hits), len(missing))
        return hits, missing

    def fill(self, probed: Iterable[str], fetched: Dict[str, Any]) -> None:
        """Store the result of a batched fetch for every probed key.

        Keys absent from ``fetched`` are remembered as negative entries so
        repeated queries over sparse grid regions stop re-probing the
        store.
        """
        with self._lock:
            for key in probed:
                self._store(key, fetched.get(key, MISSING))
            self.stats.fills += 1
            self._evict()
            self._publish_gauges()

    def _store(self, key: str, value: Any) -> None:
        size = _entry_size(key, value)
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._entries[key] = (value, size)
        self._bytes += size

    def _evict(self) -> None:
        evicted = 0
        while self._entries and (len(self._entries) > self.max_entries
                                 or self._bytes > self.max_bytes):
            _key, (_value, size) = self._entries.popitem(last=False)
            self._bytes -= size
            evicted += 1
        if evicted:
            self.stats.evictions += evicted
            if self._metrics is not None:
                self._metrics.counter(
                    "gfu_cache_evictions_total",
                    "GFU-metadata cache LRU evictions").inc(evicted)

    # ---------------------------------------------------------- fill spans
    @contextmanager
    def fill_scope(self, tracer: Optional[Tracer],
                   num_keys: int) -> Iterator[Span]:
        """Trace one batched fill with a *detached* ``cache.fill`` span.

        Detached (``Tracer.task_span``) so the physical KV reads of the
        fill never land in the active query's span tree — the query trace
        stays byte-identical with and without the cache.  Finished spans
        are kept on a bounded ring for inspection.
        """
        if tracer is None or not tracer.enabled:
            with nullcontext(None) as span:
                yield span
            return
        with tracer.task_span("cache.fill", keys=num_keys) as span:
            yield span
        self._fills.append(span)

    def recent_fills(self) -> List[Span]:
        """The most recent ``cache.fill`` spans, oldest first."""
        return list(self._fills)

    # --------------------------------------------------------- invalidation
    def on_write(self, key: str) -> None:
        """KV-store write listener: discard the touched entry (if cached).

        Covers every mutation path — builds, appends (header merges and
        new GFU entries over previously-negative cells), metadata updates
        and deletes — without the writers knowing the cache exists.

        Streaming-delta writes (``delta:``/``deltameta:`` keys) go through
        here too, and deliberately evict *only their exact key*: a
        high-rate ingest stream must never flush the base GFU headers and
        bounds that make concurrent query planning cheap.  Base rebuilds
        are the opposite case and use the namespace invalidations below.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return
            self._bytes -= entry[1]
            self.stats.invalidations += 1
            self._note_invalidations(1)
            self._publish_gauges()

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop every cached entry whose key starts with ``prefix``."""
        with self._lock:
            doomed = [k for k in self._entries if k.startswith(prefix)]
            for key in doomed:
                _value, size = self._entries.pop(key)
                self._bytes -= size
            if doomed:
                self.stats.invalidations += len(doomed)
                self._note_invalidations(len(doomed))
                self._publish_gauges()
        return len(doomed)

    def invalidate_index(self, table: str, index: str) -> int:
        """Full invalidation of one index's namespace (rebuild / drop)."""
        ns = f"{table.lower()}:{index.lower()}:"
        return (self.invalidate_prefix(f"dgf:{ns}")
                + self.invalidate_prefix(f"dgfmeta:{ns}")
                + self.invalidate_prefix(f"dgfpyr:{ns}"))

    def invalidate_table(self, table: str) -> int:
        """Full invalidation of every index on ``table`` (append path).

        Deliberately does *not* touch ``delta:`` entries: appended base
        files don't change resident streaming ops, and delta mutations
        already self-invalidate exactly via :meth:`on_write`.
        """
        t = table.lower()
        return (self.invalidate_prefix(f"dgf:{t}:")
                + self.invalidate_prefix(f"dgfmeta:{t}:")
                + self.invalidate_prefix(f"dgfpyr:{t}:"))

    def invalidate_cells(self, table: str, index: str,
                         cells: Iterable[str]) -> int:
        """Exact invalidation of specific grid cells (base GFU entry and
        delta op list) — what a targeted compaction needs: the untouched
        cells' cached metadata stays hot."""
        ns = f"{table.lower()}:{index.lower()}"
        dropped = 0
        with self._lock:
            for cell in cells:
                for key in (f"dgf:{ns}:{cell}", f"delta:{ns}:{cell}"):
                    entry = self._entries.pop(key, None)
                    if entry is not None:
                        self._bytes -= entry[1]
                        dropped += 1
            if dropped:
                self.stats.invalidations += dropped
                self._note_invalidations(dropped)
                self._publish_gauges()
        return dropped

    def invalidate_streaming(self, table: str) -> int:
        """Drop every streaming-delta entry of ``table`` (including
        negative entries), for DROP TABLE / detach-with-clear."""
        t = table.lower()
        return (self.invalidate_prefix(f"delta:{t}:")
                + self.invalidate_prefix(f"deltameta:{t}:"))

    def _note_invalidations(self, count: int) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "gfu_cache_invalidations_total",
                "GFU-metadata cache entries dropped by invalidation").inc(
                    count)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._publish_gauges()

    # ------------------------------------------------------------ inspection
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def snapshot(self) -> Dict[str, Any]:
        """Stats plus residency, as plain JSON-able data."""
        with self._lock:
            data = self.stats.as_dict()
            data["entries"] = len(self._entries)
            data["bytes"] = self._bytes
        return data
