"""QueryService: bounded admission + worker scheduling over one session.

The ROADMAP's north star is a catalog serving heavy interactive traffic;
the paper's DGFIndex makes each MDRQ cheap, and this layer lets many of
them run at once.  A :class:`QueryService` owns a pool of worker threads
(sized like PR 1's :class:`~repro.mapreduce.cluster.ExecutionConfig`) that
drain a **bounded** admission queue of submitted statements:

* ``submit()`` enqueues a statement and returns a
  :class:`concurrent.futures.Future`; when the queue is full it either
  raises :class:`~repro.errors.ServiceOverloadedError` (the default,
  load-shedding behaviour) or blocks for a slot (``block=True``).
* ``execute()`` / ``run_all()`` are the blocking conveniences.

Determinism: each worker wraps its statement in
:func:`repro.hdfs.metrics.task_io_scope`, so the session's shared
``fs.io`` counters are updated once per statement under the merge lock
instead of racing on the bare ``+=`` hot path, and the tracer's span
stacks are already per-thread.  Every per-query observable — rows, stats,
simulated seconds, normalized trace — is therefore byte-identical whether
a statement ran alone or interleaved with others (the differential
harness, ``tests/harness/differential.py``, asserts this at concurrency
1/4/8 with the GFU cache on and off).

Concurrency contract: SELECT / EXPLAIN statements may run concurrently
without restriction.  DDL and data loading mutate the shared metastore
and filesystem; submit those from one logical writer at a time (exactly
HBase/Hive's own single-master metadata discipline).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Sequence

from repro.errors import (ServiceClosedError, ServiceDegradedError,
                          ServiceOverloadedError)
from repro.hdfs.metrics import task_io_scope
from repro.mapreduce.cluster import ExecutionConfig

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids import cycle
    from repro.hive.session import HiveSession, QueryOptions, QueryResult

DEFAULT_QUEUE_DEPTH = 64

#: worker shutdown marker (cannot collide with a submitted item).
_STOP = object()


@dataclass
class _Submission:
    sql: Any
    options: Optional["QueryOptions"]
    future: Future
    enqueued_at: float


@dataclass(frozen=True)
class ServiceStatus:
    """Partial-availability snapshot (:meth:`QueryService.status`).

    ``state`` is ``"available"`` or ``"degraded"``; ``availability`` is
    the fraction of recent statements that succeeded (1.0 until the
    first statement finishes).
    """

    state: str
    availability: float
    window_ok: int
    window_error: int
    queue_depth: int

    @property
    def degraded(self) -> bool:
        return self.state == "degraded"


class QueryService:
    """Admits statements into a bounded queue and runs them on workers.

    One service serves one :class:`~repro.hive.session.HiveSession`; the
    session's GFU-metadata cache (when enabled) is what makes the fan-out
    cheap — after the first query warms it, concurrent MDRQs plan without
    touching the KV store.
    """

    def __init__(self, session: "HiveSession",
                 max_workers: Optional[int] = None,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 execution: Optional[ExecutionConfig] = None,
                 degraded_error_window: int = 16,
                 degraded_error_threshold: float = 0.5,
                 shed_when_degraded: bool = False):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if degraded_error_window < 1:
            raise ValueError("degraded_error_window must be >= 1")
        if not 0.0 < degraded_error_threshold <= 1.0:
            raise ValueError("degraded_error_threshold must be in (0, 1]")
        if max_workers is None:
            config = execution if execution is not None else ExecutionConfig()
            max_workers = config.worker_count()
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.session = session
        self.max_workers = max_workers
        self.queue_depth = queue_depth
        #: degradation tracking: the service is "degraded" while the error
        #: fraction over the last ``degraded_error_window`` finished
        #: statements reaches ``degraded_error_threshold``.  With
        #: ``shed_when_degraded`` a degraded service refuses new work with
        #: :class:`~repro.errors.ServiceDegradedError` (a *transient*
        #: error: the window recovers as healthy statements finish).
        self.degraded_error_window = degraded_error_window
        self.degraded_error_threshold = degraded_error_threshold
        self.shed_when_degraded = shed_when_degraded
        self._recent: "deque[bool]" = deque(maxlen=degraded_error_window)
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_depth)
        self._closed = False
        self._lock = threading.Lock()
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"query-service-{i}", daemon=True)
            for i in range(max_workers)]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------ metrics
    def _metrics(self):
        return self.session.metrics

    def _note_depth(self) -> None:
        self._metrics().gauge(
            "service_queue_depth",
            "statements waiting in the admission queue").set(
                self._queue.qsize())

    # ----------------------------------------------------------- admission
    def submit(self, sql: Any, options: Optional["QueryOptions"] = None,
               block: bool = False) -> "Future[QueryResult]":
        """Admit one statement; returns a Future for its QueryResult.

        With ``block=False`` (default) a full queue sheds load by raising
        :class:`ServiceOverloadedError`; ``block=True`` waits for a slot.
        """
        if self._closed:
            raise ServiceClosedError("query service is closed")
        if self.shed_when_degraded and self.degraded:
            self._metrics().counter(
                "service_degraded_rejects_total",
                "statements shed while the service was degraded").inc()
            raise ServiceDegradedError(
                f"service degraded: recent error rate reached "
                f"{self.degraded_error_threshold:.0%}; retry after the "
                "window recovers")
        item = _Submission(sql=sql, options=options, future=Future(),
                           enqueued_at=time.perf_counter())
        try:
            self._queue.put(item, block=block)
        except queue.Full:
            self._metrics().counter(
                "service_rejected_total",
                "statements shed because the admission queue was "
                "full").inc()
            raise ServiceOverloadedError(
                f"admission queue full ({self.queue_depth} pending); "
                "retry later or submit with block=True")
        self._note_depth()
        return item.future

    def execute(self, sql: Any,
                options: Optional["QueryOptions"] = None) -> "QueryResult":
        """Blocking submit-and-wait (admission waits for a slot too)."""
        return self.submit(sql, options, block=True).result()

    def run_all(self, statements: Iterable[Any]) -> List["QueryResult"]:
        """Submit many statements and return their results in input order.

        Entries may be plain SQL strings or ``(sql, options)`` pairs.
        Statements execute concurrently across the worker pool; the
        returned list order matches the submission order regardless.
        """
        futures: List[Future] = []
        for statement in statements:
            if (isinstance(statement, tuple) and len(statement) == 2):
                sql, options = statement
            else:
                sql, options = statement, None
            futures.append(self.submit(sql, options, block=True))
        return [future.result() for future in futures]

    # -------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._note_depth()
            wait = time.perf_counter() - item.enqueued_at
            self._metrics().histogram(
                "service_queue_wait_seconds",
                "wall seconds a statement waited for a worker").observe(
                    wait)
            if not item.future.set_running_or_notify_cancel():
                self._count("cancelled")
                continue
            try:
                # One I/O scope per statement: this thread's fs.io updates
                # buffer locally and merge once, so concurrent statements
                # never race on the shared counters.
                with task_io_scope():
                    result = self.session.execute(item.sql, item.options)
            except BaseException as exc:
                self._count("error")
                item.future.set_exception(exc)
            else:
                self._count("ok")
                item.future.set_result(result)

    def _count(self, status: str) -> None:
        self._metrics().counter(
            "service_queries_total",
            "statements finished by the query service").inc(status=status)
        if status in ("ok", "error"):
            with self._lock:
                self._recent.append(status == "ok")
            self._metrics().gauge(
                "service_availability",
                "fraction of recently finished statements that "
                "succeeded").set(self._availability())

    # ---------------------------------------------------------- degradation
    def _availability(self) -> float:
        with self._lock:
            if not self._recent:
                return 1.0
            return sum(self._recent) / len(self._recent)

    @property
    def degraded(self) -> bool:
        """True while the recent error fraction reaches the threshold."""
        return (1.0 - self._availability()) >= self.degraded_error_threshold

    def status(self) -> ServiceStatus:
        """Snapshot of the service's partial availability."""
        with self._lock:
            recent = list(self._recent)
        ok = sum(recent)
        total = len(recent)
        availability = ok / total if total else 1.0
        degraded = (1.0 - availability) >= self.degraded_error_threshold
        return ServiceStatus(
            state="degraded" if degraded else "available",
            availability=availability,
            window_ok=ok,
            window_error=total - ok,
            queue_depth=self._queue.qsize())

    # ------------------------------------------------------------ streaming
    def streaming_writer(self, table: str, index: str,
                         key_columns: Optional[Sequence[str]] = None,
                         **kwargs):
        """The write-side door: an admission-controlled
        :class:`~repro.delta.writer.StreamingWriter` whose ops land in the
        table's KV delta store and are merged on read by every statement
        this service runs.  ``kwargs`` pass through to the writer
        (``batch_size``, ``buffer_limit``, ``compact_threshold``, ...);
        ``shed_when_degraded`` defaults to the service's own setting so
        writes and queries shed together.
        """
        if self._closed:
            raise ServiceClosedError("query service is closed")
        from repro.delta.writer import StreamingWriter
        binding = self.session.attach_delta(table, index,
                                            key_columns=key_columns)
        kwargs.setdefault("shed_when_degraded", self.shed_when_degraded)
        return StreamingWriter(binding, service=self, **kwargs)

    # ------------------------------------------------------------ lifecycle
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, wait: bool = True) -> None:
        """Stop admitting work; drain the queue, then stop the workers."""
        with self._lock:
            if self._closed:
                workers: Sequence[threading.Thread] = ()
            else:
                self._closed = True
                workers = self._workers
                for _ in workers:
                    self._queue.put(_STOP)
        if wait:
            for worker in workers:
                worker.join()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
