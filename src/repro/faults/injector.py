"""FaultInjector: binds a :class:`FaultPlan` to a :class:`FaultRegistry`.

The injector is the single object the instrumented layers hold (``HDFS``,
``KVStore``, ``MapReduceEngine`` each expose a ``faults`` attribute,
``None`` by default so the fault-free fast path costs one attribute
read).  It answers the plan's decisions *and* records what actually
happened, so the registry is always consistent with the injected
behaviour regardless of which layer asked.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import KVStoreTimeout
from repro.faults.plan import (DATANODE_DEAD, KV_TIMEOUT, LAYOUT_DOWNGRADE,
                               SPECULATIVE_WIN, TASK_CRASH, TASK_RETRY,
                               TASK_STRAGGLER, FaultPlan, KV_RETRY,
                               REPLICA_FAILOVER)
from repro.faults.registry import FaultRegistry


def _task_target(job: str, kind: str, task_id: int) -> str:
    return f"{job}/{kind}[{task_id}]"


class FaultInjector:
    """Decision + bookkeeping facade over one plan and one registry."""

    def __init__(self, plan: FaultPlan,
                 registry: Optional[FaultRegistry] = None):
        self.plan = plan
        self.registry = registry if registry is not None else FaultRegistry()
        self.policy = plan.policy

    def bind_metrics(self, metrics) -> None:
        self.registry.bind_metrics(metrics)

    # ---------------------------------------------------------------- tasks
    def task_crash_point(self, job: str, kind: str, task_id: int,
                         attempt: int) -> Optional[int]:
        """The plan's crash decision for one attempt (None = clean)."""
        return self.plan.task_crash_point(job, kind, task_id, attempt)

    def task_crashed(self, job: str, kind: str, task_id: int,
                     attempt: int, records_read: int = 0,
                     will_retry: bool = True) -> None:
        """Record one crashed attempt; charge backoff only when a retry
        will actually wait it out (not for exhausted or speculative
        attempts)."""
        self.registry.record_fault(
            TASK_CRASH, _task_target(job, kind, task_id), attempt,
            detail=f"after {records_read} records")
        if will_retry:
            self.registry.add_backoff(self.policy.backoff_seconds(attempt + 1))

    def task_recovered(self, job: str, kind: str, task_id: int,
                       attempt: int) -> None:
        """A retried attempt succeeded after >= 1 crash."""
        self.registry.record_recovery(
            TASK_RETRY, _task_target(job, kind, task_id), attempt)

    def is_straggler(self, job: str, kind: str, task_id: int) -> bool:
        if not self.policy.speculative_execution:
            return False
        return self.plan.is_straggler(job, kind, task_id)

    def straggler_detected(self, job: str, kind: str, task_id: int) -> None:
        self.registry.record_fault(
            TASK_STRAGGLER, _task_target(job, kind, task_id))

    def speculative_won(self, job: str, kind: str, task_id: int,
                        attempt: int) -> None:
        self.registry.record_recovery(
            SPECULATIVE_WIN, _task_target(job, kind, task_id), attempt)

    # ------------------------------------------------------------------- KV
    def kv_gate(self, op: str, key: str) -> int:
        """Run the transient-timeout gate for one logical KV operation.

        Returns the number of timeouts survived (0 = clean first attempt).
        Raises :class:`~repro.errors.KVStoreTimeout` when the plan fails
        every attempt the policy allows.
        """
        target = f"{op}:{key}"
        attempt = 0
        while self.plan.kv_times_out(op, key, attempt):
            self.registry.record_fault(KV_TIMEOUT, target, attempt)
            attempt += 1
            if attempt >= self.policy.max_kv_attempts:
                raise KVStoreTimeout(
                    f"KV {op} of {key!r} timed out on all "
                    f"{attempt} attempts")
            self.registry.add_backoff(self.policy.backoff_seconds(attempt))
        if attempt:
            self.registry.record_recovery(KV_RETRY, target, attempt)
        return attempt

    # ----------------------------------------------------------------- HDFS
    def scheduled_datanode_kills(self, job_name: str):
        """Datanodes the plan kills when this job starts (mid-query
        layout-failover chaos; the engine fires these at job start)."""
        return self.plan.scheduled_datanode_kills(job_name)

    def layout_downgrade(self, dead_layouts: Sequence[str],
                         aborted_seconds: float) -> None:
        """One aborted query attempt survived by replanning onto the
        surviving layouts.  The aborted attempt's accrued simulated time
        is charged as recovery backoff — never to the retried query's own
        time, which stays byte-identical to a fault-free run against the
        surviving fleet."""
        self.registry.record_fault(
            "layout_outage", ",".join(sorted(dead_layouts)))
        self.registry.record_recovery(
            LAYOUT_DOWNGRADE, ",".join(sorted(dead_layouts)))
        self.registry.add_backoff(aborted_seconds)

    def activate_datanode_faults(self, fs) -> None:
        """Kill the plan's ``dead_datanodes`` (the chaos runner calls this
        after data placement so reads must actually fail over)."""
        for node_id in self.plan.dead_datanodes:
            fs.kill_datanode(node_id)

    def datanode_killed(self, node_id: int) -> None:
        self.registry.record_fault(DATANODE_DEAD, f"datanode-{node_id}")

    def replica_failover(self, block_id: int, used_node: int) -> None:
        self.registry.record_recovery(
            REPLICA_FAILOVER, f"block-{block_id}",
            detail=f"served by datanode-{used_node}")
