"""Deterministic fault injection and the registry of recovery outcomes.

Public surface::

    FaultPlan       what goes wrong (seeded rates + scheduled FaultSpecs)
    FaultSpec       one scheduled fault
    RetryPolicy     bounded attempts + simulated exponential backoff
    FaultInjector   plan + registry facade held by instrumented layers
    FaultRegistry   durable record of injections and recoveries
    FaultEvent      one entry in that record

Kind vocabularies: ``FAULT_KINDS`` (:data:`TASK_CRASH`,
:data:`TASK_STRAGGLER`, :data:`DATANODE_DEAD`, :data:`KV_TIMEOUT`) and
``RECOVERY_KINDS`` (:data:`TASK_RETRY`, :data:`SPECULATIVE_WIN`,
:data:`REPLICA_FAILOVER`, :data:`KV_RETRY`).
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (DATANODE_DEAD, FAULT_KINDS, KV_RETRY,
                               KV_TIMEOUT, RECOVERY_KINDS, REPLICA_FAILOVER,
                               SPECULATIVE_WIN, TASK_CRASH, TASK_RETRY,
                               TASK_STRAGGLER, FaultPlan, FaultSpec,
                               RetryPolicy)
from repro.faults.registry import FaultEvent, FaultRegistry

__all__ = [
    "FaultPlan", "FaultSpec", "RetryPolicy",
    "FaultInjector", "FaultRegistry", "FaultEvent",
    "FAULT_KINDS", "RECOVERY_KINDS",
    "TASK_CRASH", "TASK_STRAGGLER", "DATANODE_DEAD", "KV_TIMEOUT",
    "TASK_RETRY", "SPECULATIVE_WIN", "REPLICA_FAILOVER", "KV_RETRY",
]
