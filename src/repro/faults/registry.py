"""FaultRegistry: the durable record of injected faults and recoveries.

Every injection (a crashed attempt, a straggler, a dead datanode, a KV
timeout) and every recovery (a successful retry, a speculative win, a
replica failover) lands here as a :class:`FaultEvent`.  The registry is
the chaos harness's proof that faults *demonstrably fired* — its counters
must be nonzero for a chaos run to count — and the recovery benchmark's
ledger: simulated backoff seconds and re-executed attempts are charged
here, never to the query's cost-model time (which stays byte-identical
to fault-free runs).

Thread model: one lock serializes appends; events carry no wall-clock
timestamps, so two runs of the same plan produce the same multiset of
events regardless of scheduling.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.plan import (KV_RETRY, REPLICA_FAILOVER, SPECULATIVE_WIN,
                               TASK_RETRY)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or one recovery, with its stable target name."""

    kind: str
    target: str
    attempt: int = 0
    #: True for recovery events, False for injections.
    recovery: bool = False
    detail: str = ""


class FaultRegistry:
    """Accumulates fault/recovery events and the simulated retry cost."""

    def __init__(self, metrics=None):
        self._lock = threading.Lock()
        self.events: List[FaultEvent] = []
        self._backoff_seconds = 0.0
        self._reexecuted_tasks = 0
        self._metrics = metrics

    def bind_metrics(self, metrics) -> None:
        """Mirror future events into ``faults_injected_total`` /
        ``fault_recoveries_total`` counters of a metrics registry."""
        self._metrics = metrics

    # -------------------------------------------------------------- record
    def record_fault(self, kind: str, target: str, attempt: int = 0,
                     detail: str = "") -> FaultEvent:
        event = FaultEvent(kind=kind, target=target, attempt=attempt,
                           recovery=False, detail=detail)
        self._append(event)
        if self._metrics is not None:
            self._metrics.counter(
                "faults_injected_total",
                "faults injected by the active FaultPlan").inc(kind=kind)
        return event

    def record_recovery(self, kind: str, target: str, attempt: int = 0,
                        detail: str = "") -> FaultEvent:
        event = FaultEvent(kind=kind, target=target, attempt=attempt,
                           recovery=True, detail=detail)
        self._append(event)
        if kind in (TASK_RETRY, SPECULATIVE_WIN):
            with self._lock:
                self._reexecuted_tasks += 1
        if self._metrics is not None:
            self._metrics.counter(
                "fault_recoveries_total",
                "recoveries performed by the fault-tolerance "
                "machinery").inc(kind=kind)
        return event

    def add_backoff(self, seconds: float) -> None:
        with self._lock:
            self._backoff_seconds += seconds

    def _append(self, event: FaultEvent) -> None:
        with self._lock:
            self.events.append(event)

    # ------------------------------------------------------------- inspect
    def _counts(self, recovery: bool) -> Dict[str, int]:
        out: Dict[str, int] = {}
        with self._lock:
            for event in self.events:
                if event.recovery is recovery:
                    out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def injected_counts(self) -> Dict[str, int]:
        """``{fault kind: times injected}``."""
        return self._counts(recovery=False)

    def recovery_counts(self) -> Dict[str, int]:
        """``{recovery kind: times recovered}``."""
        return self._counts(recovery=True)

    def total_injected(self) -> int:
        return sum(self.injected_counts().values())

    def total_recovered(self) -> int:
        return sum(self.recovery_counts().values())

    @property
    def backoff_seconds(self) -> float:
        with self._lock:
            return self._backoff_seconds

    @property
    def reexecuted_tasks(self) -> int:
        with self._lock:
            return self._reexecuted_tasks

    def events_of(self, kind: str) -> List[FaultEvent]:
        with self._lock:
            return [e for e in self.events if e.kind == kind]

    # ----------------------------------------------------------- overheads
    def recovery_overhead_seconds(self, cluster) -> float:
        """Simulated seconds recovery cost on top of the fault-free run.

        Re-executed attempts (retries and speculative duplicates) each pay
        one task launch; KV retries each pay one extra get; backoff waits
        are charged as recorded.  This is the number the recovery-overhead
        benchmark reports — by design it is *excluded* from per-query
        ``stats.time`` so chaos results stay byte-identical.
        """
        recoveries = self.recovery_counts()
        kv_retries = recoveries.get(KV_RETRY, 0)
        failovers = recoveries.get(REPLICA_FAILOVER, 0)
        return (self.backoff_seconds
                + self.reexecuted_tasks * cluster.task_startup_seconds
                + kv_retries * cluster.kv_get_seconds
                + failovers * 0.0)  # failing over is a same-read re-route

    def summary(self) -> Dict[str, Dict[str, int]]:
        return {"injected": self.injected_counts(),
                "recovered": self.recovery_counts()}
