"""FaultPlan: the deterministic, seedable description of what goes wrong.

A plan mixes *scheduled* faults (explicit :class:`FaultSpec`s — "crash map
task 0 of the build job on its first attempt") with *probabilistic* ones
(rates).  Every probabilistic decision is a pure function of the plan seed
and a stable identity — ``(job name, task kind, task id)`` for tasks,
``(op, key)`` for KV operations — **never** of call order, wall time or
thread identity.  That is what keeps chaos runs byte-identical across
``max_workers`` settings: the same task experiences the same fault no
matter which thread runs it or when (the same construction that makes the
parallel engine's barrier merges deterministic, see
``tests/harness/differential.py``).

Probabilistic faults only ever hit the *first* attempt of a task or KV
operation, so a plan with the default :class:`RetryPolicy` can never
exhaust the retry budget: recovery is guaranteed, and the chaos harness
can demand byte-identical results with faults on.  Scheduled specs may
target later attempts (that is how the retry-exhaustion tests force a
permanent failure).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

#: fault kinds a plan can inject (registry/event vocabulary).
TASK_CRASH = "task_crash"
TASK_STRAGGLER = "task_straggler"
DATANODE_DEAD = "datanode_dead"
KV_TIMEOUT = "kv_timeout"

FAULT_KINDS = (TASK_CRASH, TASK_STRAGGLER, DATANODE_DEAD, KV_TIMEOUT)

#: recovery kinds recorded by the machinery that survives the fault.
TASK_RETRY = "task_retry"
SPECULATIVE_WIN = "speculative_win"
REPLICA_FAILOVER = "replica_failover"
KV_RETRY = "kv_retry"
#: replan onto surviving replica layouts after a pinned datanode died;
#: not in RECOVERY_KINDS — only tables with a replica fleet can produce
#: it, so rate-driven chaos plans never do.
LAYOUT_DOWNGRADE = "layout_downgrade"

RECOVERY_KINDS = (TASK_RETRY, SPECULATIVE_WIN, REPLICA_FAILOVER, KV_RETRY)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry and backoff parameters shared by every recovery path.

    Backoff is *simulated* seconds (accumulated in the
    :class:`~repro.faults.registry.FaultRegistry`, charged by the recovery
    benchmark) — recovery never sleeps wall-clock time, and it never
    perturbs a query's cost-model seconds, which stay byte-identical to
    the fault-free run.
    """

    #: total attempts per task (Hadoop's ``mapreduce.map.maxattempts``).
    max_task_attempts: int = 4
    #: total attempts per KV operation (HBase client retries, scaled down).
    max_kv_attempts: int = 3
    #: first-retry backoff, simulated seconds.
    backoff_base_seconds: float = 1.0
    #: exponential backoff multiplier per further retry.
    backoff_factor: float = 2.0
    #: launch speculative duplicates of straggler map tasks.  Reduce tasks
    #: are never speculated: their attempts may hold external side effects
    #: (file writers opened in ``reduce_setup``), the same reason many
    #: Hadoop deployments disable reduce-side speculation.
    speculative_execution: bool = True

    def __post_init__(self):
        if self.max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")
        if self.max_kv_attempts < 1:
            raise ValueError("max_kv_attempts must be >= 1")

    def backoff_seconds(self, attempt: int) -> float:
        """Simulated backoff charged before retry number ``attempt``
        (1-based: the first retry waits the base, each later one doubles)."""
        if attempt < 1:
            return 0.0
        return self.backoff_base_seconds * \
            self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.  ``None`` fields match anything.

    For :data:`TASK_CRASH` / :data:`TASK_STRAGGLER` the target is a task
    (``job`` is a substring of the job name); ``attempt``/``times`` pick
    which attempts fail (attempts ``attempt .. attempt+times-1``).  For
    :data:`KV_TIMEOUT` the target is an operation (``op`` like ``"get"``,
    ``key`` an exact key).  ``crash_after_records`` makes a map-task crash
    fire mid-read instead of at startup.
    """

    kind: str
    job: Optional[str] = None
    task_kind: Optional[str] = None
    task_id: Optional[int] = None
    attempt: int = 0
    times: int = 1
    op: Optional[str] = None
    key: Optional[str] = None
    crash_after_records: Optional[int] = None
    #: for :data:`DATANODE_DEAD`: kill this datanode when a job whose name
    #: contains ``job`` starts (mid-query layout failover; see
    #: :meth:`FaultPlan.scheduled_datanode_kills`).
    datanode: Optional[int] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.times < 1:
            raise ValueError("times must be >= 1")

    def matches_task(self, kind: str, job: str, task_kind: str,
                     task_id: int, attempt: int) -> bool:
        if self.kind != kind:
            return False
        if self.job is not None and self.job not in job:
            return False
        if self.task_kind is not None and self.task_kind != task_kind:
            return False
        if self.task_id is not None and self.task_id != task_id:
            return False
        return self.attempt <= attempt < self.attempt + self.times

    def matches_kv(self, op: str, key: str, attempt: int) -> bool:
        if self.kind != KV_TIMEOUT:
            return False
        if self.op is not None and self.op != op:
            return False
        if self.key is not None and self.key != key:
            return False
        return self.attempt <= attempt < self.attempt + self.times


def _derive(seed: int, *identity) -> random.Random:
    """A fresh RNG keyed by ``(seed, identity)``; the key is hashed with
    CRC32 over its repr (like the engine's ``stable_hash``), so decisions
    are identical across processes and hash seeds."""
    digest = zlib.crc32(repr((seed,) + identity).encode("utf-8"))
    return random.Random(digest)


@dataclass(frozen=True)
class FaultPlan:
    """What to inject: rates, scheduled specs, dead datanodes, policy."""

    seed: int = 0
    #: probability a task's first attempt crashes.
    task_crash_rate: float = 0.0
    #: probability a map task's first attempt is a straggler (speculated).
    task_straggler_rate: float = 0.0
    #: probability a KV operation's first attempt times out.
    kv_timeout_rate: float = 0.0
    #: datanodes marked dead when the chaos runner activates the plan
    #: (after data placement, so replica failover actually exercises).
    dead_datanodes: Tuple[int, ...] = ()
    scheduled: Tuple[FaultSpec, ...] = ()
    policy: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self):
        for rate in (self.task_crash_rate, self.task_straggler_rate,
                     self.kv_timeout_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rates must be in [0, 1], "
                                 f"got {rate}")

    # ----------------------------------------------------------- decisions
    def task_crash_point(self, job: str, task_kind: str, task_id: int,
                         attempt: int) -> Optional[int]:
        """None = attempt runs clean; an int = the attempt fails.

        For map tasks the int is "crash after this many input records"
        (0 = at startup); reduce attempts always crash at startup, before
        ``reduce_setup`` runs, so a retry never re-opens output files.
        """
        for spec in self.scheduled:
            if spec.matches_task(TASK_CRASH, job, task_kind, task_id,
                                 attempt):
                if task_kind == "map" and spec.crash_after_records is not None:
                    return spec.crash_after_records
                return 0
        if attempt != 0 or self.task_crash_rate <= 0.0:
            return None
        rng = _derive(self.seed, "crash", job, task_kind, task_id)
        if rng.random() >= self.task_crash_rate:
            return None
        if task_kind == "map":
            # Crash partway through the read with 50% odds; the record
            # count is part of the same derived stream, so it is as stable
            # as the decision itself.
            return rng.randrange(0, 8) if rng.random() < 0.5 else 0
        return 0

    def is_straggler(self, job: str, task_kind: str, task_id: int) -> bool:
        """Whether the task's first successful attempt runs slow enough to
        trigger speculative execution (map tasks only)."""
        if task_kind != "map":
            return False
        for spec in self.scheduled:
            if spec.matches_task(TASK_STRAGGLER, job, task_kind, task_id, 0):
                return True
        if self.task_straggler_rate <= 0.0:
            return False
        rng = _derive(self.seed, "straggler", job, task_kind, task_id)
        return rng.random() < self.task_straggler_rate

    def scheduled_datanode_kills(self, job_name: str) -> Tuple[int, ...]:
        """Datanodes a :data:`DATANODE_DEAD` spec kills when a job whose
        name contains the spec's ``job`` starts running.

        Job start is the one deterministic point shared by every worker
        count — the engine is single-threaded there — so a mid-query kill
        hits the identical moment whether tasks run on 1 or 8 workers.
        Specs without a ``job`` or ``datanode`` are handled by
        :meth:`FaultInjector.activate_datanode_faults` instead.
        """
        return tuple(spec.datanode for spec in self.scheduled
                     if spec.kind == DATANODE_DEAD
                     and spec.datanode is not None
                     and spec.job is not None and spec.job in job_name)

    def kv_times_out(self, op: str, key: str, attempt: int) -> bool:
        for spec in self.scheduled:
            if spec.matches_kv(op, key, attempt):
                return True
        if attempt != 0 or self.kv_timeout_rate <= 0.0:
            return False
        rng = _derive(self.seed, "kv", op, key)
        return rng.random() < self.kv_timeout_rate

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan shape under a different seed (harness reruns)."""
        from dataclasses import replace
        return replace(self, seed=seed)
