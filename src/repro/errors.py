"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Subsystems raise the most specific
subclass that applies; error messages always name the offending object
(path, table, key, ...) to keep failures debuggable.

Transient faults form a second axis: errors that a retry, failover or
speculative re-execution is expected to cure also derive from
:class:`TransientError`, *in addition to* their subsystem base.  The
"most specific subclass" contract therefore composes — a KV-store RPC
timeout is both a KV-store error and a transient one:

    >>> issubclass(KVStoreTimeout, KVStoreError)
    True
    >>> issubclass(KVStoreTimeout, TransientError)
    True
    >>> issubclass(DataNodeUnavailable, HDFSError)
    True
    >>> issubclass(TaskAttemptFailed, MapReduceError)
    True
    >>> issubclass(ServiceDegradedError, ServiceError)
    True
    >>> all(issubclass(cls, (TransientError, ReproError))
    ...     for cls in (DataNodeUnavailable, KVStoreTimeout,
    ...                 TaskAttemptFailed, ServiceDegradedError))
    True

Permanent errors never carry the transient marker, so retry loops that
catch :class:`TransientError` cannot accidentally swallow them:

    >>> issubclass(FileNotFoundInHDFS, TransientError)
    False
    >>> issubclass(ServiceOverloadedError, TransientError)
    False
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TransientError(ReproError):
    """Marker base for faults that recovery machinery may retry.

    Raised (alongside a subsystem base class) by the fault-injection and
    recovery subsystem (:mod:`repro.faults`): bounded retries, replica
    failover and speculative execution all key off this class.
    """


class HDFSError(ReproError):
    """Base class for simulated-HDFS errors."""


class FileNotFoundInHDFS(HDFSError):
    """A path does not exist in the simulated namespace."""


class FileAlreadyExists(HDFSError):
    """Attempt to create a path that already exists."""


class NotADirectory(HDFSError):
    """A path component that must be a directory is a file."""


class IsADirectory(HDFSError):
    """A file operation was attempted on a directory."""


class DataNodeUnavailable(HDFSError, TransientError):
    """A block read hit a dead DataNode (recoverable while a live replica
    remains; permanent once every replica's node is down)."""


class StorageFormatError(ReproError):
    """Corrupt or inconsistent data encountered by a file-format codec."""


class SchemaError(ReproError):
    """Schema definition or row/schema mismatch errors."""


class MapReduceError(ReproError):
    """Failures inside the MapReduce engine (job config, task errors)."""


class TaskAttemptFailed(MapReduceError, TransientError):
    """One task *attempt* crashed; the engine retries up to the bounded
    attempt limit before letting the failure escape the job."""


class KVStoreError(ReproError):
    """Errors from the HBase-like key-value store."""


class KVStoreTimeout(KVStoreError, TransientError):
    """A KV-store operation timed out (an injected transient RPC fault);
    the store retries with backoff before surfacing it."""


class HiveQLSyntaxError(ReproError):
    """Lexer/parser error with position information."""

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (at offset {position}: ...{snippet!r}...)"
        super().__init__(message)


class SemanticError(ReproError):
    """Valid syntax but invalid semantics (unknown table/column, type error)."""


class ExecutionError(ReproError):
    """Runtime failure while executing a query plan."""


class MetastoreError(ReproError):
    """Unknown or duplicate table/index/partition in the metastore."""


class IndexError_(ReproError):
    """Index construction or usage errors (named with trailing underscore to
    avoid shadowing the builtin)."""


class DGFError(IndexError_):
    """DGFIndex-specific errors (bad splitting policy, missing metadata)."""


class DeltaError(ReproError):
    """Streaming-delta errors (bad op kinds, missing key columns,
    compaction misuse)."""


class ServiceError(ReproError):
    """Errors from the concurrent query service."""


class ServiceOverloadedError(ServiceError):
    """The service's bounded admission queue is full."""


class ServiceClosedError(ServiceError):
    """A statement was submitted to a closed query service."""


class ServiceDegradedError(ServiceError, TransientError):
    """The query service is shedding load while degraded (its recent
    error rate crossed the degradation threshold); retry after the
    window recovers."""


class InterfaceError(ReproError):
    """Misuse of the DB-API style connection layer (``repro.connect``)."""


class HadoopDBError(ReproError):
    """Errors from the HadoopDB baseline engine."""


class BenchmarkError(ReproError):
    """Experiment-harness configuration errors."""
