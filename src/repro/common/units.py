"""Byte-size constants and human-readable formatting helpers."""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


def human_bytes(n: float) -> str:
    """Format a byte count the way ``ls -h`` would.

    >>> human_bytes(0)
    '0B'
    >>> human_bytes(2048)
    '2.0KiB'
    >>> human_bytes(3 * MiB)
    '3.0MiB'
    """
    n = float(n)
    for unit, size in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= size:
            return f"{n / size:.1f}{unit}"
    return f"{int(n)}B"


def human_seconds(s: float) -> str:
    """Format a duration in seconds compactly.

    >>> human_seconds(0.5)
    '0.50s'
    >>> human_seconds(90)
    '1m30s'
    >>> human_seconds(3700)
    '1h01m'
    """
    if s < 60:
        return f"{s:.2f}s"
    if s < 3600:
        minutes, seconds = divmod(int(round(s)), 60)
        return f"{minutes}m{seconds:02d}s"
    hours, rem = divmod(int(round(s)), 3600)
    return f"{hours}h{rem // 60:02d}m"
