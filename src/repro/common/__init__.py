"""Shared small utilities: size units, deterministic RNG, table rendering."""

from repro.common.units import KiB, MiB, GiB, human_bytes, human_seconds
from repro.common.rng import DeterministicRNG
from repro.common.tables import render_table

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "human_bytes",
    "human_seconds",
    "DeterministicRNG",
    "render_table",
]
