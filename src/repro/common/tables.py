"""Plain-text table rendering for benchmark reports and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render ``rows`` as a GitHub-flavoured markdown table.

    >>> print(render_table(["a", "b"], [[1, "x"]]))
    | a | b |
    |---|---|
    | 1 | x |
    """
    rendered_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)) + " |"

    parts = []
    if title:
        parts.append(f"**{title}**")
        parts.append("")
    parts.append(line(list(headers)))
    parts.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts).rstrip()


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
