"""Deterministic random number generation for data generators.

All generators in :mod:`repro.data` take a seed and derive child streams by
name, so regenerating a dataset is reproducible regardless of the order in
which fields are drawn.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRNG:
    """A seeded RNG that can spawn named, independent child streams.

    >>> rng = DeterministicRNG(7)
    >>> a = rng.child("users").random()
    >>> b = DeterministicRNG(7).child("users").random()
    >>> a == b
    True
    >>> rng.child("users").random() == rng.child("regions").random()
    False
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def child(self, name: str) -> "DeterministicRNG":
        """Return an independent stream keyed by ``name``."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return DeterministicRNG(int.from_bytes(digest[:8], "big"))

    # Delegate the subset of the random.Random API the generators use.
    def random(self) -> float:
        return self._random.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._random.randint(lo, hi)

    def choice(self, seq):
        return self._random.choice(seq)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def sample(self, seq, k: int):
        return self._random.sample(seq, k)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)
