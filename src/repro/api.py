"""The stable public connection API: ``repro.connect() -> Connection``.

A thin DB-API-2.0-flavoured facade over :class:`repro.hive.session
.HiveSession` and :class:`repro.service.queryservice.QueryService`,
so applications depend on a small, stable surface instead of the
session's internals:

    >>> import repro
    >>> conn = repro.connect()
    >>> cur = conn.cursor()
    >>> _ = cur.execute("CREATE TABLE t (a bigint, b double)")
    >>> conn.load_rows("t", [(1, 2.0), (2, 3.0)])
    2
    >>> cur.execute("SELECT sum(b) FROM t WHERE a >= ?", (1,)).fetchall()
    [(5.0,)]

Deviations from PEP 249, all forced by the underlying model, are explicit:
there is no transaction concept (``commit()`` is a no-op, there is no
``rollback()``), parameters use the ``qmark`` style with client-side
binding (the HiveQL dialect has no server-side placeholders), and
``Cursor.execute`` returns the cursor to allow chaining.

Concurrency goes through :attr:`Connection.service` — a
:class:`~repro.service.queryservice.QueryService` with a bounded admission
queue — while single-statement calls stay on the caller's thread.

Knob ownership (who tunes what)
-------------------------------
Three layers each own their knobs, and this module plumbs all of them:

* **Planner, per query** — :class:`QueryOptions`, passed to every
  ``execute(..., options=...)`` as an instance or a plain dict
  (``{"dgf_layout": "fine"}``): index choice, the header-path ablation,
  replica-layout pinning, reducer counts.
* **Engine, per session** — :class:`~repro.mapreduce.cluster
  .ExecutionConfig`, fixed at :func:`connect` time (``execution=...`` or
  the ``vectorized=`` / ``engine_workers=`` shorthands): real in-process
  task parallelism and the vectorized scan path.  Results are
  byte-identical for every setting, so these never appear per query.
* **Service, per connection** — ``max_workers=`` / ``queue_depth=`` size
  :attr:`Connection.service`'s admission queue and worker pool.

Unknown kwargs are rejected with a ``TypeError`` that names the layer the
knob belongs to, rather than being silently dropped.
"""

from __future__ import annotations

import dataclasses

from typing import (Any, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from repro.core.dgf.advisor import Advice
from repro.errors import ExecutionError, InterfaceError, ReproError
from repro.hdfs.filesystem import HDFS
from repro.hive.plan import Plan
from repro.hive.session import HiveSession, QueryOptions, QueryResult
from repro.service.advisor import Advisor
from repro.kvstore.hbase import KVStore
from repro.mapreduce.cluster import (PAPER_CLUSTER, ClusterConfig,
                                     ExecutionConfig)
from repro.service.cache import GfuMetadataCache
from repro.service.queryservice import DEFAULT_QUEUE_DEPTH, QueryService

#: PEP 249 module globals.
apilevel = "2.0"
#: threads may share the module and connections (the session serializes
#: shared state; concurrent statements go through ``Connection.service``).
threadsafety = 2
#: ``?`` placeholders, bound client-side.
paramstyle = "qmark"

#: PEP 249 exception aliases (all repro errors derive from ReproError).
Error = ReproError

__all__ = [
    "apilevel", "threadsafety", "paramstyle",
    "connect", "Connection", "Cursor",
    "Error", "InterfaceError",
    "Advice", "Advisor",
    "Plan", "QueryOptions", "QueryResult",
]

#: valid QueryOptions field names (for dict coercion + error messages)
_QUERY_OPTION_FIELDS = tuple(
    f.name for f in dataclasses.fields(QueryOptions))

#: knobs users reach for in the wrong layer, and where they live
_MISPLACED_KNOBS = {
    "vectorized": "connect(vectorized=...) — an engine (ExecutionConfig) "
                  "knob fixed per session",
    "max_workers": "connect(max_workers=...) — a service-pool knob fixed "
                   "per connection",
    "engine_workers": "connect(engine_workers=...) — an engine "
                      "(ExecutionConfig) knob fixed per session",
    "queue_depth": "connect(queue_depth=...) — a service-pool knob fixed "
                   "per connection",
}


def _coerce_options(options: Union[None, QueryOptions, Mapping[str, Any]]
                    ) -> Optional[QueryOptions]:
    """Accept QueryOptions, a plain dict of its fields, or None.

    Unknown keys raise ``TypeError`` naming the valid per-query knobs —
    and point at :func:`connect` for knobs owned by the engine or
    service layers.
    """
    if options is None or isinstance(options, QueryOptions):
        return options
    if isinstance(options, Mapping):
        unknown = [key for key in options
                   if key not in _QUERY_OPTION_FIELDS]
        if unknown:
            hints = [f"{key!r} belongs to {_MISPLACED_KNOBS[key]}"
                     for key in unknown if key in _MISPLACED_KNOBS]
            detail = ("; " + "; ".join(hints)) if hints else ""
            raise TypeError(
                f"unknown query option(s) {sorted(unknown)}; per-query "
                f"(QueryOptions) knobs are {list(_QUERY_OPTION_FIELDS)}"
                + detail)
        return QueryOptions(**dict(options))
    raise TypeError(
        f"options must be QueryOptions, a dict of its fields, or None; "
        f"got {type(options).__name__}")


def connect(*, data_scale: float = 1.0,
            num_datanodes: int = 4,
            cluster: ClusterConfig = PAPER_CLUSTER,
            execution: Optional[ExecutionConfig] = None,
            vectorized: Optional[bool] = None,
            engine_workers: Optional[int] = None,
            cache: Union[bool, GfuMetadataCache] = True,
            max_workers: int = 1,
            queue_depth: int = DEFAULT_QUEUE_DEPTH,
            fs: Optional[HDFS] = None,
            kvstore: Optional[KVStore] = None,
            **unknown: Any) -> "Connection":
    """Open a connection to a fresh (or supplied) simulated warehouse.

    ``cache`` controls the GFU-metadata cache (True = a fresh default
    cache, False = disabled, or pass a shared instance).  ``max_workers``
    sizes the connection's query service; 1 (the default) runs statements
    on the calling thread and only starts service workers when
    :attr:`Connection.service` is first used.

    ``vectorized`` / ``engine_workers`` are shorthands for the matching
    :class:`ExecutionConfig` fields (``vectorized`` / ``max_workers``),
    merged into ``execution``; see the module docstring for which layer
    owns which knob.
    """
    if unknown:
        hints = [f"{key!r} is a per-query (QueryOptions) knob — pass it "
                 f"via execute(..., options=...)"
                 for key in unknown if key in _QUERY_OPTION_FIELDS]
        detail = ("; " + "; ".join(hints)) if hints else ""
        raise TypeError(
            f"connect() got unknown keyword(s) {sorted(unknown)}; "
            f"session/engine knobs are execution=/vectorized="
            f"/engine_workers=, service knobs are max_workers="
            f"/queue_depth=" + detail)
    if vectorized is not None or engine_workers is not None:
        overrides = {}
        if vectorized is not None:
            overrides["vectorized"] = vectorized
        if engine_workers is not None:
            overrides["max_workers"] = engine_workers
        execution = dataclasses.replace(execution or ExecutionConfig(),
                                        **overrides)
    session = HiveSession(fs=fs, kvstore=kvstore, cluster=cluster,
                          data_scale=data_scale,
                          num_datanodes=num_datanodes,
                          execution=execution, cache=cache)
    return Connection(session, max_workers=max_workers,
                      queue_depth=queue_depth)


# ------------------------------------------------------------ param binding
def _render_param(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        raise InterfaceError("HiveQL dialect has no boolean literals; "
                             "bind 0/1 instead")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        if "'" in value or '"' in value:
            # The dialect's lexer has no quote escaping; reject rather
            # than silently produce a different statement.
            raise InterfaceError(
                f"string parameter {value!r} contains a quote, which the "
                "HiveQL dialect cannot escape")
        return f"'{value}'"
    raise InterfaceError(
        f"cannot bind parameter of type {type(value).__name__}; "
        "supported: None, int, float, str")


def bind_parameters(operation: str, parameters: Sequence[Any]) -> str:
    """Substitute ``?`` placeholders (qmark style) outside string literals."""
    out: List[str] = []
    params = list(parameters)
    index = 0
    in_string: Optional[str] = None
    for ch in operation:
        if in_string is not None:
            out.append(ch)
            if ch == in_string:
                in_string = None
        elif ch in ("'", '"'):
            out.append(ch)
            in_string = ch
        elif ch == "?":
            if index >= len(params):
                raise InterfaceError(
                    f"statement has more placeholders than the "
                    f"{len(params)} parameter(s) supplied")
            out.append(_render_param(params[index]))
            index += 1
        else:
            out.append(ch)
    if index != len(params):
        raise InterfaceError(
            f"statement has {index} placeholder(s) but "
            f"{len(params)} parameter(s) were supplied")
    return "".join(out)


class Cursor:
    """PEP 249 style cursor over one connection.

    ``description`` entries are 7-tuples with only ``name`` populated —
    the dialect does not expose per-column result types.
    """

    arraysize = 1

    def __init__(self, connection: "Connection"):
        self._connection = connection
        self._closed = False
        self._rows: List[Tuple] = []
        self._pos = 0
        #: the full :class:`QueryResult` of the last execute (stats, trace,
        #: plan) — the escape hatch past the DB-API surface.
        self.result: Optional[QueryResult] = None
        self.description: Optional[List[Tuple]] = None
        self.rowcount = -1

    # -------------------------------------------------------------- helpers
    def _check_open(self) -> None:
        if self._closed or self._connection.closed:
            raise InterfaceError("cursor is closed")

    def _install(self, result: QueryResult) -> None:
        self.result = result
        self._rows = list(result.rows)
        self._pos = 0
        self.description = [(name, None, None, None, None, None, None)
                            for name in result.columns]
        self.rowcount = len(self._rows)

    @property
    def plan(self) -> Optional[Plan]:
        """Structured plan of the last executed statement (if any)."""
        return self.result.plan if self.result is not None else None

    @property
    def connection(self) -> "Connection":
        return self._connection

    # -------------------------------------------------------------- execute
    def execute(self, operation: str,
                parameters: Optional[Sequence[Any]] = None,
                options: Union[None, QueryOptions,
                               Mapping[str, Any]] = None) -> "Cursor":
        """Run one statement; returns this cursor (chainable).

        ``options`` takes a :class:`QueryOptions` or a plain dict of its
        fields; unknown keys raise ``TypeError``.
        """
        self._check_open()
        sql = operation if parameters is None \
            else bind_parameters(operation, parameters)
        self._install(self._connection._execute(sql,
                                                _coerce_options(options)))
        return self

    def executemany(self, operation: str,
                    seq_of_parameters: Iterable[Sequence[Any]],
                    options: Union[None, QueryOptions,
                                   Mapping[str, Any]] = None) -> "Cursor":
        """Run ``operation`` once per parameter set, in order.

        ``rowcount`` accumulates across the sets; fetches see the last
        statement's rows.  ``options`` applies to every set.
        """
        self._check_open()
        options = _coerce_options(options)
        total = 0
        ran = False
        for parameters in seq_of_parameters:
            self.execute(operation, parameters, options=options)
            total += max(self.rowcount, 0)
            ran = True
        if ran:
            self.rowcount = total
        return self

    # --------------------------------------------------------------- fetch
    def fetchone(self) -> Optional[Tuple]:
        self._check_open()
        if self._pos >= len(self._rows):
            return None
        row = self._rows[self._pos]
        self._pos += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple]:
        self._check_open()
        if size is None:
            size = self.arraysize
        rows = self._rows[self._pos:self._pos + size]
        self._pos += len(rows)
        return rows

    def fetchall(self) -> List[Tuple]:
        self._check_open()
        rows = self._rows[self._pos:]
        self._pos = len(self._rows)
        return rows

    def __iter__(self) -> Iterator[Tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def scalar(self) -> Any:
        """Single value of a one-row/one-column result (convenience)."""
        self._check_open()
        if self.result is None:
            raise InterfaceError("no statement has been executed")
        return self.result.scalar()

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._closed = True
        self._rows = []

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class Connection:
    """One client's handle on a warehouse: cursors, direct execution,
    bulk loading and (for fan-out) a bounded concurrent query service."""

    def __init__(self, session: HiveSession, max_workers: int = 1,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH):
        if max_workers < 1:
            raise InterfaceError(
                f"max_workers must be >= 1, got {max_workers}")
        self._session = session
        self._max_workers = max_workers
        self._queue_depth = queue_depth
        self._service: Optional[QueryService] = None
        self._closed = False

    # ------------------------------------------------------------- plumbing
    @property
    def session(self) -> HiveSession:
        """The underlying session (the stable escape hatch)."""
        return self._session

    @property
    def metrics(self):
        """The session's :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self._session.metrics

    @property
    def cache(self) -> Optional[GfuMetadataCache]:
        """The session's GFU-metadata cache (None when disabled)."""
        return self._session.metadata_cache

    @property
    def service(self) -> QueryService:
        """The connection's query service (started on first use)."""
        self._check_open()
        if self._service is None:
            self._service = QueryService(self._session,
                                         max_workers=self._max_workers,
                                         queue_depth=self._queue_depth)
        return self._service

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def _execute(self, sql: str,
                 options: Optional[QueryOptions] = None) -> QueryResult:
        self._check_open()
        if self._service is not None or self._max_workers > 1:
            return self.service.execute(sql, options)
        return self._session.execute(sql, options)

    # -------------------------------------------------------------- surface
    def cursor(self) -> Cursor:
        self._check_open()
        return Cursor(self)

    def execute(self, sql: str,
                parameters: Optional[Sequence[Any]] = None,
                options: Union[None, QueryOptions,
                               Mapping[str, Any]] = None) -> QueryResult:
        """Run one statement and return its full :class:`QueryResult`.

        ``options`` takes a :class:`QueryOptions` or a plain dict of its
        fields; unknown keys raise ``TypeError``.
        """
        if parameters is not None:
            sql = bind_parameters(sql, parameters)
        return self._execute(sql, _coerce_options(options))

    def executemany(self, sql: str,
                    seq_of_parameters: Iterable[Sequence[Any]],
                    options: Union[None, QueryOptions,
                                   Mapping[str, Any]] = None
                    ) -> List[QueryResult]:
        """Run ``sql`` once per parameter set; results in input order.
        ``options`` applies to every set."""
        options = _coerce_options(options)
        return [self.execute(sql, parameters, options=options)
                for parameters in seq_of_parameters]

    def advisor(self, table: str, index: str, **kwargs: Any) -> Advisor:
        """A workload-driven tuning :class:`~repro.service.advisor
        .Advisor` for one DGF index: ``observe()`` captures the query
        log, ``report()`` proposes divergent replica layouts,
        ``apply()`` builds them, ``auto_tune()`` re-tunes on drift.
        See docs/advisor.md."""
        self._check_open()
        return Advisor(self._session, table, index, **kwargs)

    def explain(self, sql: str, analyze: bool = False) -> Plan:
        """Structured :class:`Plan` for ``sql`` (executed when analyze)."""
        prefix = "EXPLAIN ANALYZE " if analyze else "EXPLAIN "
        result = self._execute(prefix + sql)
        if result.plan is None:
            raise ExecutionError(f"statement produced no plan: {sql!r}")
        return result.plan

    def load_rows(self, table: str, rows: Iterable[Sequence[Any]],
                  file_label: Optional[str] = None) -> int:
        """Bulk-append rows (the HDFS load path; no SQL INSERT exists)."""
        self._check_open()
        return self._session.load_rows(table, rows, file_label=file_label)

    def commit(self) -> None:
        """No-op: the warehouse has no transactions (PEP 249 compliance)."""
        self._check_open()

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._service is not None:
            self._service.close()
            self._service = None

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
