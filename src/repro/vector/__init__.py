"""Vectorized columnar execution for the scan→filter→aggregate hot path.

The public surface the rest of the system uses:

* :func:`repro.vector.runtime.numpy_available` — is the vector engine
  usable right now (NumPy importable and not disabled via
  ``REPRO_VECTOR_DISABLE=1``)?
* :func:`repro.vector.plan.compile_select` — build a
  :class:`~repro.vector.plan.VectorSelectPlan` for an analysed SELECT, or
  ``None`` when the scan must stay on the row engine;
* :class:`~repro.vector.plan.VectorSelectPlan` — executed by
  :mod:`repro.mapreduce.engine` in place of the per-record mapper loop.

Everything here is optional: without NumPy the imports still succeed
(only :mod:`repro.vector.runtime` touches the import) and every query
runs on the row engine, byte-for-byte identically.
"""

from repro.vector.batch import ArrayUnavailable, ColumnBatch
from repro.vector.kernels import KernelFallback, compile_kernel
from repro.vector.plan import MapTaskReport, VectorSelectPlan, compile_select
from repro.vector.runtime import DISABLE_ENV, numpy_available, numpy_module

__all__ = [
    "ArrayUnavailable",
    "ColumnBatch",
    "DISABLE_ENV",
    "KernelFallback",
    "MapTaskReport",
    "VectorSelectPlan",
    "compile_kernel",
    "compile_select",
    "numpy_available",
    "numpy_module",
]
