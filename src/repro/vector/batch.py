"""ColumnBatch: one decoded chunk of a scan, stored column-wise.

A batch holds, per schema position, either a plain Python list of parsed
values (exactly what :meth:`DataType.parse` produced — so the values are
*identical objects semantically* to what the row engine sees), ``None``
for a column the scan pruned away, or — when the decoder took its NumPy
fast path — an int64/float64 array whose ``tolist()`` is that exact
Python list (NumPy parses numeric text with the same ``int``/``float``
conversions, so the values are bit-identical).  Whichever side was built
first, the other is materialized lazily per column: arrays only when a
kernel asks, Python lists (and row tuples, for per-row fallback) only
when row-engine code asks.

Batches may also be built *fully lazily* (:meth:`ColumnBatch.lazy`): the
decoder hands over one loader per column and a column is not even parsed
until something touches it.  That is the classic column-store late
materialization — a 17-column meter table scanned by a 4-column query
parses 4 columns — and it is invisible to correctness because parsing is
pure CPU: the bytes were already read (I/O counters are decided by the
reader's preads, not by which fields get converted), and any code path
that *does* need a value (kernels, per-row fallback, emitted rows) forces
the column first.

Two invariants keep the row and vector engines byte-identical:

* every value handed to user-visible code (emitted keys, emitted values,
  fallback rows) is a *pure Python* scalar — never a NumPy scalar, whose
  ``repr`` (used by the shuffle partitioner) and ``estimate_size``
  accounting differ;
* an INT/BIGINT column whose values overflow ``int64`` refuses to become
  an array (:class:`ArrayUnavailable`), which kernels translate into a
  row-engine fallback rather than silently wrapping.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.storage.schema import DataType, Schema


class ArrayUnavailable(Exception):
    """A column cannot be represented as a NumPy array (e.g. int64
    overflow); the requesting kernel must fall back to the row engine."""


#: marks a column whose loader has not run yet (distinct from ``None`` =
#: pruned column)
_PENDING = object()


class ColumnBatch:
    """A fixed number of rows, stored as per-column Python lists and/or
    NumPy arrays (see the module docstring for the equivalence)."""

    __slots__ = ("schema", "num_rows", "_cols", "_loaders", "_lists",
                 "_arrays", "_rows")

    def __init__(self, schema: Schema, num_rows: int,
                 columns: Sequence[Optional[Any]],
                 loaders: Optional[List[Optional[Callable[[], Any]]]] = None):
        self.schema = schema
        self.num_rows = num_rows
        #: per position: a Python list, a NumPy array, ``None`` (pruned),
        #: or ``_PENDING`` (loader not run yet)
        self._cols: List[Any] = list(columns)
        self._loaders = loaders
        self._lists: List[Any] = [None] * len(self._cols)
        self._arrays: List[Any] = [None] * len(self._cols)
        self._rows: Optional[List[Tuple[Any, ...]]] = None

    @classmethod
    def lazy(cls, schema: Schema, num_rows: int,
             loaders: List[Optional[Callable[[], Any]]]) -> "ColumnBatch":
        """A batch whose columns are parsed on first touch.  Each loader
        returns the column as a list or as a NumPy array; a ``None``
        loader marks the column as pruned."""
        columns = [_PENDING if loader is not None else None
                   for loader in loaders]
        return cls(schema, num_rows, columns, loaders)

    def _column(self, position: int) -> Any:
        column = self._cols[position]
        if column is _PENDING:
            column = self._loaders[position]()
            self._cols[position] = column
        return column

    def pylist(self, position: int) -> List[Any]:
        """The raw parsed values of one column (schema position)."""
        values = self._lists[position]
        if values is None:
            column = self._column(position)
            if column is None:
                raise ArrayUnavailable(
                    f"column {position} was pruned from this scan")
            if isinstance(column, list):
                values = column
            else:
                # tolist() yields pure Python int/float scalars — exactly
                # the values ``int(field)`` / ``float(field)`` would have
                # parsed.
                values = column.tolist()
            self._lists[position] = values
        return values

    def array(self, np, position: int):
        """The column as a NumPy array (int64 / float64 / unicode).

        Raises :class:`ArrayUnavailable` when the values do not fit the
        dtype (only possible for INT/BIGINT values beyond int64).
        """
        cached = self._arrays[position]
        if cached is not None:
            return cached
        column = self._column(position)
        if column is not None and not isinstance(column, list):
            self._arrays[position] = column
            return column
        values = self.pylist(position)
        dtype = self.schema.columns[position].dtype
        if dtype in (DataType.INT, DataType.BIGINT):
            try:
                array = np.array(values, dtype=np.int64)
            except OverflowError as exc:
                raise ArrayUnavailable(str(exc)) from exc
        elif dtype is DataType.DOUBLE:
            array = np.array(values, dtype=np.float64)
        else:  # STRING / DATE: numpy unicode compares lexicographically,
            # exactly like Python str.
            array = np.array(values, dtype=np.str_)
        self._arrays[position] = array
        return array

    def rows(self) -> List[Tuple[Any, ...]]:
        """Row tuples in schema order (``None`` for pruned columns) —
        exactly the tuples the row-engine RecordReader would have yielded.
        Materialized once, on first fallback."""
        if self._rows is None:
            n = self.num_rows
            columns = []
            for position in range(len(self._cols)):
                if self._column(position) is None:
                    columns.append([None] * n)
                else:
                    columns.append(self.pylist(position))
            self._rows = list(zip(*columns)) if columns else [()] * n
        return self._rows
