"""Batch kernels: lowering expression trees to NumPy with SQL NULL masks.

:func:`compile_kernel` turns an AST expression into a function
``batch -> VectorValue`` that mirrors :func:`repro.hiveql.evaluator
.compile_expr` *exactly*, including SQL three-valued logic: a
:class:`VectorValue` carries ``data`` (array or scalar) plus ``null``
(boolean mask, or ``None`` for "no NULLs anywhere").  A lane whose null
mask is set corresponds to the row function returning ``None``.

Supported today: literals, column references, ``NOT``/unary ``-``,
``AND``/``OR`` (Kleene), the six comparisons, ``+ - * /`` arithmetic,
``BETWEEN`` and ``IN`` — over matching type classes (numeric with
numeric, string with string).  Everything else returns ``None`` from
:func:`compile_kernel` ("this expression is row-only"), deliberately
including:

* ``%`` — the row engine raises ``ZeroDivisionError`` on a zero divisor
  (unlike ``/`` which yields NULL); reproducing the crash semantics
  vectorized is not worth it;
* ``LIKE`` and every scalar function (``abs``/``round``/``floor``/…) —
  per-value Python either way;
* mixed-type comparisons (e.g. int vs string) and boolean-vs-numeric
  operands, whose Python coercion quirks the row engine defines.

A compiled kernel may still raise :class:`KernelFallback` at *runtime*
when a batch turns out to be unsafe to vectorize — an int64-overflowing
column (:class:`~repro.vector.batch.ArrayUnavailable` is converted), a
``BETWEEN`` whose bounds contain NULLs (the row engine raises TypeError
there; the caller re-runs the expression row-at-a-time so the behaviour,
crash included, is identical), or integer arithmetic whose operands are
large enough that int64 could overflow where Python would not.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.hiveql import ast
from repro.hiveql.evaluator import ColumnResolver
from repro.storage.schema import DataType, Schema

#: magnitude guards: int64 arithmetic stays exact below 2**31 per operand;
#: int-vs-float comparisons stay exact below 2**53 (float64 mantissa).
_INT_ARITH_LIMIT = 2 ** 31
_INT_COMPARE_LIMIT = 2 ** 53

_NUMERIC = ("int", "float")


class KernelFallback(Exception):
    """Raised by a kernel when this batch must run on the row engine."""


class VectorValue:
    """A batch-wide value: ``data`` plus an optional NULL mask.

    ``data`` is a NumPy array of one lane per row, or a scalar (literals
    and literal-folded subtrees); ``null`` is a boolean array/scalar or
    ``None`` meaning "definitely no NULLs".
    """

    __slots__ = ("data", "null")

    def __init__(self, data: Any, null: Any = None):
        self.data = data
        self.null = null


Kernel = Callable[[Any], VectorValue]  # batch -> VectorValue


def _merge_null(np, left, right):
    if left is None:
        return right
    if right is None:
        return left
    return np.logical_or(left, right)


def _has_nulls(np, null) -> bool:
    return null is not None and bool(np.any(null))


def is_true_mask(np, value: VectorValue, num_rows: int):
    """The SQL ``WHERE`` coercion: TRUE keeps the row, FALSE/NULL drop it
    (``predicate_fn``'s ``is True``)."""
    mask = np.broadcast_to(np.asarray(value.data, dtype=bool), (num_rows,))
    if value.null is not None:
        nulls = np.broadcast_to(np.asarray(value.null, dtype=bool),
                                (num_rows,))
        mask = np.logical_and(mask, np.logical_not(nulls))
    return mask


def compile_kernel(expr: ast.Expr, resolver: ColumnResolver, schema: Schema,
                   np) -> Optional[Kernel]:
    """Compile ``expr`` to a batch kernel, or ``None`` if unsupported."""
    compiled = _compile(expr, resolver, schema, np)
    if compiled is None:
        return None
    kernel, _ktype = compiled
    return kernel


# ------------------------------------------------------------- the compiler
def _compile(expr, resolver, schema, np
             ) -> Optional[Tuple[Kernel, str]]:
    if isinstance(expr, ast.Literal):
        return _compile_literal(expr)
    if isinstance(expr, ast.ColumnRef):
        position = resolver.try_resolve(expr)
        if position is None or position >= len(schema):
            return None
        dtype = schema.columns[position].dtype
        if dtype in (DataType.INT, DataType.BIGINT):
            ktype = "int"
        elif dtype is DataType.DOUBLE:
            ktype = "float"
        else:
            ktype = "str"
        return (lambda batch: VectorValue(batch.array(np, position)), ktype)
    if isinstance(expr, ast.UnaryOp):
        return _compile_unary(expr, resolver, schema, np)
    if isinstance(expr, ast.Between):
        return _compile_between(expr, resolver, schema, np)
    if isinstance(expr, ast.InList):
        return _compile_in_list(expr, resolver, schema, np)
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, resolver, schema, np)
    return None  # Star, FuncCall (incl. LIKE-adjacent helpers), unknown


def _compile_literal(expr) -> Optional[Tuple[Kernel, str]]:
    value = expr.value
    if value is None:
        return (lambda batch: VectorValue(False, True), "null")
    if isinstance(value, bool):
        ktype = "bool"
    elif isinstance(value, int):
        ktype = "int"
    elif isinstance(value, float):
        ktype = "float"
    elif isinstance(value, str):
        ktype = "str"
    else:
        return None
    return (lambda batch: VectorValue(value), ktype)


def _compile_unary(expr, resolver, schema, np):
    operand = _compile(expr.operand, resolver, schema, np)
    if operand is None:
        return None
    kernel, ktype = operand
    if expr.op == "NOT" and ktype in ("bool", "null"):
        def not_(batch):
            value = kernel(batch)
            return VectorValue(np.logical_not(value.data), value.null)
        return not_, ktype
    if expr.op == "-" and ktype in _NUMERIC:
        def neg(batch):
            value = kernel(batch)
            if ktype == "int":
                # -(-2**63) has no int64 representation: np.negative wraps
                # it silently where Python grows, so that lane (and an
                # out-of-range literal, which would raise OverflowError)
                # goes to the row engine.
                _guard_int_magnitude(np, value, 2 ** 63)
            return VectorValue(np.negative(value.data), value.null)
        return neg, ktype
    return None


def _literal_int_out_of(expr, limit) -> bool:
    return (isinstance(expr, ast.Literal)
            and isinstance(expr.value, int)
            and not isinstance(expr.value, bool)
            and abs(expr.value) >= limit)


def _guard_int_magnitude(np, value: VectorValue, limit) -> None:
    """Refuse lanes whose int64 magnitude threatens exactness.

    The magnitude check reads ``min``/``max`` of the raw lanes and takes
    ``abs`` in Python — ``np.abs`` itself wraps on ``-2**63`` (int64 min
    has no int64 negation), which would let the one value most likely to
    overflow slip past the guard.
    """
    data = value.data
    if isinstance(data, int):
        if abs(data) >= limit:
            raise KernelFallback("int literal too large")
        return
    if getattr(data, "dtype", None) is not None and data.dtype.kind == "i":
        if data.size and max(abs(int(np.min(data))),
                             abs(int(np.max(data)))) >= limit:
            raise KernelFallback("int64 magnitude unsafe")


def _compile_between(expr, resolver, schema, np):
    parts = [_compile(sub, resolver, schema, np)
             for sub in (expr.operand, expr.low, expr.high)]
    if any(p is None for p in parts):
        return None
    (op_k, op_t), (lo_k, lo_t), (hi_k, hi_t) = parts
    if not (all(t in _NUMERIC for t in (op_t, lo_t, hi_t))
            or (op_t == lo_t == hi_t == "str")):
        return None

    def between(batch):
        value = op_k(batch)
        low = lo_k(batch)
        high = hi_k(batch)
        # A NULL bound makes the row engine raise TypeError (None is not
        # orderable); hand the batch back to it rather than guessing.
        if _has_nulls(np, low.null) or _has_nulls(np, high.null):
            raise KernelFallback("NULL BETWEEN bound")
        data = np.logical_and(np.less_equal(low.data, value.data),
                              np.less_equal(value.data, high.data))
        return VectorValue(data, value.null)

    return between, "bool"


def _compile_in_list(expr, resolver, schema, np):
    operand = _compile(expr.operand, resolver, schema, np)
    if operand is None:
        return None
    op_k, op_t = operand
    options = [_compile(o, resolver, schema, np) for o in expr.options]
    if any(o is None for o in options):
        return None
    if op_t in _NUMERIC:
        allowed = set(_NUMERIC) | {"null"}
        if any(_literal_int_out_of(o, _INT_COMPARE_LIMIT)
               for o in [expr.operand, *expr.options]):
            return None
    elif op_t == "str":
        allowed = {"str", "null"}
    else:
        return None
    if any(o_t not in allowed for _k, o_t in options):
        return None
    # A NULL-literal option never matches (the row engine's ``value ==
    # None`` is False) and never poisons the result, so drop it from the
    # kernel outright — comparing it lane-wise would even be a dtype
    # error for string operands.
    option_kernels = [k for k, t in options if t != "null"]
    option_types = [t for _k, t in options if t != "null"]
    mixed = op_t in _NUMERIC and len(
        {t for t in [op_t, *option_types] if t in _NUMERIC}) > 1

    def in_list(batch):
        value = op_k(batch)
        if mixed:
            _guard_int_magnitude(np, value, _INT_COMPARE_LIMIT)
        # Row semantics: NULL operand -> NULL; a NULL option never
        # matches (``value == None`` is False) and never poisons.
        matched = False
        for option_kernel in option_kernels:
            option = option_kernel(batch)
            if mixed:
                _guard_int_magnitude(np, option, _INT_COMPARE_LIMIT)
            hit = np.equal(value.data, option.data)
            if option.null is not None:
                hit = np.logical_and(hit, np.logical_not(option.null))
            matched = np.logical_or(matched, hit)
        return VectorValue(matched, value.null)

    return in_list, "bool"


def _compile_binary(expr, resolver, schema, np):
    op = expr.op
    left = _compile(expr.left, resolver, schema, np)
    right = _compile(expr.right, resolver, schema, np)
    if left is None or right is None:
        return None
    left_k, left_t = left
    right_k, right_t = right

    if op in ("AND", "OR"):
        if left_t not in ("bool", "null") or right_t not in ("bool", "null"):
            return None
        conjunction = op == "AND"

        def kleene(batch):
            lhs = left_k(batch)
            rhs = right_k(batch)
            ldata = np.asarray(lhs.data, dtype=bool)
            rdata = np.asarray(rhs.data, dtype=bool)
            lnull = lhs.null if lhs.null is not None else False
            rnull = rhs.null if rhs.null is not None else False
            if conjunction:
                data = np.logical_and(ldata, rdata)
                # NULL unless either side is a definite (non-NULL) False
                decided = np.logical_or(
                    np.logical_and(np.logical_not(ldata),
                                   np.logical_not(lnull)),
                    np.logical_and(np.logical_not(rdata),
                                   np.logical_not(rnull)))
            else:
                data = np.logical_or(ldata, rdata)
                decided = np.logical_or(
                    np.logical_and(ldata, np.logical_not(lnull)),
                    np.logical_and(rdata, np.logical_not(rnull)))
            null = np.logical_and(np.logical_or(lnull, rnull),
                                  np.logical_not(decided))
            if not np.any(null):
                null = None
            return VectorValue(data, null)

        return kleene, "bool"

    comparisons = {"=": np.equal, "!=": np.not_equal, "<": np.less,
                   "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal}
    if op in comparisons:
        if "null" in (left_t, right_t):
            return (lambda batch: VectorValue(False, True)), "bool"
        numeric = left_t in _NUMERIC and right_t in _NUMERIC
        stringy = left_t == "str" and right_t == "str"
        if not (numeric or stringy):
            return None
        mixed = numeric and left_t != right_t
        if numeric and (_literal_int_out_of(expr.left, _INT_COMPARE_LIMIT)
                        or _literal_int_out_of(expr.right,
                                               _INT_COMPARE_LIMIT)):
            return None
        compare = comparisons[op]

        def cmp_(batch):
            lhs = left_k(batch)
            rhs = right_k(batch)
            if mixed:
                # int64 -> float64 loses exactness at 2**53; Python
                # compares exactly, so large ints go to the row engine.
                _guard_int_magnitude(np, lhs, _INT_COMPARE_LIMIT)
                _guard_int_magnitude(np, rhs, _INT_COMPARE_LIMIT)
            data = compare(lhs.data, rhs.data)
            null = _merge_null(np, lhs.null, rhs.null)
            return VectorValue(data, null)

        return cmp_, "bool"

    if op in ("+", "-", "*", "/"):
        if "null" in (left_t, right_t):
            return (lambda batch: VectorValue(0.0, True)), "float"
        if left_t not in _NUMERIC or right_t not in _NUMERIC:
            return None
        int_int = left_t == "int" and right_t == "int"
        if op != "/" and int_int and (
                _literal_int_out_of(expr.left, _INT_ARITH_LIMIT)
                or _literal_int_out_of(expr.right, _INT_ARITH_LIMIT)):
            return None
        if op == "/":
            if _literal_int_out_of(expr.left, _INT_COMPARE_LIMIT) \
                    or _literal_int_out_of(expr.right, _INT_COMPARE_LIMIT):
                return None

            def div(batch):
                lhs = left_k(batch)
                rhs = right_k(batch)
                # Python divides big ints exactly; int64 -> float64 first
                # would double-round, so large ints take the row engine.
                _guard_int_magnitude(np, lhs, _INT_COMPARE_LIMIT)
                _guard_int_magnitude(np, rhs, _INT_COMPARE_LIMIT)
                with np.errstate(all="ignore"):
                    data = np.true_divide(lhs.data, rhs.data)
                zero = np.equal(rhs.data, 0)  # catches -0.0 like Python ==
                null = _merge_null(np, _merge_null(np, lhs.null, rhs.null),
                                   zero if np.any(zero) else None)
                return VectorValue(data, null)
            return div, "float"

        arith = {"+": np.add, "-": np.subtract, "*": np.multiply}[op]

        def arith_(batch):
            lhs = left_k(batch)
            rhs = right_k(batch)
            if int_int:
                # int64 wraps silently where Python would grow; stay exact.
                _guard_int_magnitude(np, lhs, _INT_ARITH_LIMIT)
                _guard_int_magnitude(np, rhs, _INT_ARITH_LIMIT)
            with np.errstate(all="ignore"):
                data = arith(lhs.data, rhs.data)
            return VectorValue(data, _merge_null(np, lhs.null, rhs.null))

        return arith_, ("int" if int_int else "float")

    return None  # LIKE, %, unknown operators
