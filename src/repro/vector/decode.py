"""Columnar decoders: batches straight out of the storage formats.

Each supported input format gets a *batch reader* that yields
:class:`~repro.vector.batch.ColumnBatch` chunks for a
:class:`~repro.mapreduce.splits.FileSplit` while issuing **exactly** the
same filesystem preads as the row-engine record reader for that format —
text readers share :meth:`TextFileReader.iter_line_batches` (whose fetch
pattern is the row reader's), RCFile readers share
:meth:`RCFileReader.read_group_columns` (the single source of the group
pread pattern).  That identity is load-bearing: per-task
``hdfs.bytes_read`` / ``hdfs.seeks`` counters land in the traces the
differential harness compares byte-for-byte.

Batch boundaries: text batches are one per contiguous byte range — the
whole split, or one GFU slice range of a DGF split (the reader still
buffers 256 KiB at a time underneath; the segments are joined before
decoding) — and RCFile batches are one row group each.  Batches straddle
nothing: a slice or split boundary simply produces a shorter batch.

Decoding uses the same conversions as :meth:`DataType.parse`
(``int``/``float``/verbatim text), so a value observed by a kernel is
semantically identical to what the row engine parses; if a text segment
does not split cleanly into ``rows x columns`` fields the decoder
re-parses it line-by-line through :func:`parse_line`, reproducing the row
engine's error behaviour exactly.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.dgf.inputformat import SLICES_META_KEY, DgfSliceInputFormat
from repro.delta.overlay import (DELTA_ROWS_META_KEY,
                                 DeltaOverlayInputFormat)
from repro.hive import formats as hive_formats
from repro.mapreduce.splits import (FileSplit, RCFileRowInputFormat,
                                    TextRowInputFormat)
from repro.storage.rcfile import RCFileReader
from repro.storage.schema import DataType, Schema
from repro.storage.textfile import (DEFAULT_DELIMITER, TextFileReader,
                                    parse_line)
from repro.vector import runtime
from repro.vector.batch import ColumnBatch


def _parse_int_column(np, fields: List[bytes]) -> Any:
    """``[int(f) for f in fields]`` — as an int64 array when NumPy can
    hold it (NumPy routes conversion through ``int()``, so values are
    identical), else as a Python list (beyond-int64 values parse fine for
    the row engine; kernels asking for the array get
    :class:`ArrayUnavailable` and fall back).  Malformed fields raise the
    row engine's exact ``ValueError`` by re-parsing the decoded text."""
    if np is not None:
        try:
            return np.array(fields, dtype=np.int64)
        except (OverflowError, ValueError):
            pass  # beyond int64, or malformed — the Python parse decides
    return [int(f.decode("utf-8")) for f in fields]


def _parse_double_column(np, fields: List[bytes]) -> Any:
    if np is not None:
        try:
            return np.array(fields, dtype=np.float64)
        except ValueError:
            pass  # malformed — re-raise the row engine's exact error
    return [float(f.decode("utf-8")) for f in fields]


def decode_text_range(reader: TextFileReader, start: int, end: Optional[int],
                      schema: Schema) -> Optional[ColumnBatch]:
    """One ColumnBatch for all the lines of ``[start, end)``, or ``None``
    when the range holds no lines.

    The reader's segment generator is drained first — its preads are the
    row reader's, in the row reader's order — and the segments are joined
    into a single batch, so per-batch costs (one split per column, one
    NumPy conversion per touched column, one kernel pass per expression)
    are paid once per contiguous byte range instead of once per 256 KiB
    of buffer.
    """
    segments: List[bytes] = []
    count = 0
    for segment, lines in reader.iter_line_batches(start, end):
        segments.append(segment)
        count += lines
    if not segments:
        return None
    joined = segments[0] if len(segments) == 1 else b"".join(segments)
    return decode_text_segment(joined, count, schema)


def decode_text_segment(segment: bytes, count: int, schema: Schema,
                        delimiter: str = DEFAULT_DELIMITER) -> ColumnBatch:
    """Decode ``count`` newline-terminated lines into one ColumnBatch.

    Fast path: one bytes-level split for the whole segment (fields can
    never contain the delimiter or a newline — ``serialize_row`` rejects
    them at write time), then one C-level NumPy conversion per *touched*
    numeric column — the loaders are lazy, so a wide table scanned by a
    narrow query never parses (or even UTF-8-decodes) the other columns.
    Shape mismatches fall back to per-line :func:`parse_line`, which
    raises the row engine's exact ``StorageFormatError`` for malformed
    input; without NumPy the numeric columns are built with
    ``int``/``float`` directly — same values either way.
    """
    raw = segment
    if raw.endswith(b"\n"):
        raw = raw[:-1]
    ncols = len(schema)
    delim = delimiter.encode("utf-8")
    parts = raw.replace(b"\n", delim).split(delim)
    if len(parts) != count * ncols:
        rows = [parse_line(line, schema, delimiter)
                for line in raw.decode("utf-8").split("\n")]
        columns = [list(col) for col in zip(*rows)] if rows else \
            [[] for _ in range(ncols)]
        return ColumnBatch(schema, len(rows), columns)
    np = runtime.numpy_module()
    loaders: List[Any] = []
    for i, col in enumerate(schema.columns):
        if col.dtype in (DataType.INT, DataType.BIGINT):
            loaders.append(lambda i=i: _parse_int_column(np, parts[i::ncols]))
        elif col.dtype is DataType.DOUBLE:
            loaders.append(
                lambda i=i: _parse_double_column(np, parts[i::ncols]))
        else:
            loaders.append(
                lambda i=i: [f.decode("utf-8") for f in parts[i::ncols]])
    return ColumnBatch.lazy(schema, count, loaders)


# ------------------------------------------------------------ batch readers
class TextBatchReader:
    """Batches over a plain text split (TextRowInputFormat semantics)."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def read_batches(self, fs, split: FileSplit) -> Iterator[ColumnBatch]:
        with fs.open(split.path) as stream:
            reader = TextFileReader(stream, self.schema)
            batch = decode_text_range(reader, split.start, split.end,
                                      self.schema)
            if batch is not None:
                yield batch


class RCFileBatchReader:
    """One batch per row group (RCFileRowInputFormat semantics, including
    column pruning — pruned columns stay ``None`` in the batch, exactly the
    ``None`` the row reader puts in its tuples)."""

    def __init__(self, schema: Schema, columns: Optional[Sequence[str]]):
        self.schema = schema
        self.wanted = None
        if columns is not None:
            self.wanted = sorted(schema.index_of(c) for c in columns)

    def read_batches(self, fs, split: FileSplit) -> Iterator[ColumnBatch]:
        with fs.open(split.path) as stream:
            reader = RCFileReader(stream, self.schema)
            for group_offset, _nrows in list(reader.iter_groups(0, None)):
                if not (split.start <= group_offset < split.end):
                    continue
                nrows, decoded = reader.read_group_columns(group_offset,
                                                           self.wanted)
                yield ColumnBatch(self.schema, nrows, decoded)


class DgfTextBatchReader:
    """Batches over the ordered slice ranges of a DGF text split."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def read_batches(self, fs, split: FileSplit) -> Iterator[ColumnBatch]:
        ranges = split.meta.get(SLICES_META_KEY, [])
        if not ranges:
            return
        with fs.open(split.path) as stream:
            reader = TextFileReader(stream, self.schema)
            for start, end in ranges:
                batch = decode_text_range(reader, start, end, self.schema)
                if batch is not None:
                    yield batch


class DgfRCFileBatchReader:
    """Row-group batches for the groups covered by a DGF split's slices."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def read_batches(self, fs, split: FileSplit) -> Iterator[ColumnBatch]:
        ranges = split.meta.get(SLICES_META_KEY, [])
        if not ranges:
            return
        starts = [r[0] for r in ranges]
        with fs.open(split.path) as stream:
            reader = RCFileReader(stream, self.schema)
            for group_offset, _nrows in list(reader.iter_groups(0, None)):
                idx = bisect.bisect_right(starts, group_offset) - 1
                if idx < 0 or group_offset >= ranges[idx][1]:
                    continue
                nrows, decoded = reader.read_group_columns(group_offset)
                yield ColumnBatch(self.schema, nrows, decoded)


class DeltaOverlayBatchReader:
    """Batches for a merge-on-read scan.

    Base splits without tombstones delegate to the wrapped format's own
    batch reader — identical preads, identical batches.  Synthetic
    ``delta://`` splits (and, with tombstones resident, filtered base
    splits) materialize the overlay's *row-path* output into plain-list
    columns: the strict fallback, exact by construction because it reads
    through :meth:`DeltaOverlayInputFormat.read_split` itself.
    """

    def __init__(self, fmt, inner):
        self.fmt = fmt          # the DeltaOverlayInputFormat
        self.inner = inner      # base batch reader, or None
        self.schema = fmt.schema

    def read_batches(self, fs, split: FileSplit) -> Iterator[ColumnBatch]:
        if DELTA_ROWS_META_KEY not in split.meta and self.inner is not None:
            yield from self.inner.read_batches(fs, split)
            return
        rows = [row for _offset, row in self.fmt.read_split(fs, split)]
        if rows:
            yield ColumnBatch(self.schema, len(rows),
                              [list(col) for col in zip(*rows)])


def batch_reader_for(input_format) -> Optional[Any]:
    """The batch reader equivalent to a row input format, or ``None`` when
    the format has no columnar decoder (sequence files, filtered RCFile
    scans, unknown formats) — in which case the whole scan stays on the
    row engine."""
    if type(input_format) is DeltaOverlayInputFormat:
        inner = None
        if not input_format.overlay.has_suppression:
            inner = batch_reader_for(input_format.inner)
        return DeltaOverlayBatchReader(input_format, inner)
    if type(input_format) is TextRowInputFormat:
        return TextBatchReader(input_format.schema)
    if type(input_format) is RCFileRowInputFormat:
        if (input_format.group_filter is not None
                or input_format.row_filter is not None):
            return None
        return RCFileBatchReader(input_format.schema, input_format.columns)
    if type(input_format) is DgfSliceInputFormat:
        stored = input_format.table.stored_as.upper()
        if stored == hive_formats.TEXTFILE:
            return DgfTextBatchReader(input_format.schema)
        if stored == hive_formats.RCFILE:
            return DgfRCFileBatchReader(input_format.schema)
        return None
    return None
