"""NumPy import guard for the vectorized engine.

NumPy is an *optional* dependency: the row engine is the source of truth
and runs everywhere, the vector engine is a speed layer that only engages
when NumPy is importable.  All vector modules obtain NumPy through
:func:`numpy_module` instead of importing it at module scope, so importing
:mod:`repro.vector` (or anything that imports it, such as
:mod:`repro.hive.session`) never fails on a NumPy-less interpreter.

Setting the environment variable ``REPRO_VECTOR_DISABLE=1`` makes
:func:`numpy_module` return ``None`` even when NumPy is installed — the
full-fallback differential tests use it to exercise the exact code path a
NumPy-less deployment takes.
"""

from __future__ import annotations

import os
from typing import Any, Optional

try:  # pragma: no cover - exercised via REPRO_VECTOR_DISABLE in tests
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: set to "1" to pretend NumPy is absent (full row-engine fallback).
DISABLE_ENV = "REPRO_VECTOR_DISABLE"


def numpy_module() -> Optional[Any]:
    """The ``numpy`` module, or ``None`` when absent or disabled."""
    if _numpy is None or os.environ.get(DISABLE_ENV, "") == "1":
        return None
    return _numpy


def numpy_available() -> bool:
    return numpy_module() is not None
