"""Aggregate folding that is *bit-identical* to the row engine.

The row engine emits one per-row state per matched row
(``CompiledAggregate.accumulate_row(initial(), row)``) and the task
combiner folds them left-to-right in row order
(``hive.exec._merge_states``).  Floating-point addition is not
associative, so the vector folds below replicate that exact merge chain
instead of using ``np.sum`` (whose pairwise summation rounds
differently):

* float ``sum`` uses ``np.add.accumulate`` — strictly sequential
  (``out[i] = out[i-1] + a[i]``) and therefore the same operation
  sequence as the row fold, continued across batches by prepending the
  running state;
* ``avg`` folds ``0.0 + value`` terms the same way (the ``0.0 +`` is the
  row engine's ``AvgAgg.accumulate`` on a fresh ``(0.0, 0)`` state, and
  turns ``-0.0`` into ``0.0`` exactly like it);
* integer ``sum`` folds in Python (exact, overflow-free);
* ``min``/``max`` fold with the builtins the row merge uses — NaN and
  ``±0.0`` tie behaviour included — over Python scalars;
* everything else (string sums, ``count(DISTINCT …)``) goes through
  :func:`fold_python_values`, the literal merge chain.

Seeding with ``function.initial()`` is exact because ``merge(initial(),
s) == s`` for every aggregate in :mod:`repro.hive.aggregates` — the avg
case holds because a per-row total ``0.0 + v`` can never be ``-0.0``.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.hive.aggregates import (AvgAgg, CompiledAggregate, CountAgg,
                                   CountDistinctAgg, MaxAgg, MinAgg, SumAgg)


def per_row_state(aggregate: CompiledAggregate, value: Any) -> Any:
    """``accumulate_row(initial(), row)`` given the already-evaluated
    argument value — the exact per-row state the row mapper emits."""
    function = aggregate.function
    if aggregate.count_star:
        return function.accumulate(function.initial(), 1)
    if value is None:
        if isinstance(function, (CountAgg, CountDistinctAgg)):
            return function.initial()
        return function.accumulate(function.initial(), value)
    if isinstance(function, CountAgg):
        return function.accumulate(function.initial(), 1)
    return function.accumulate(function.initial(), value)


def fold_python_values(aggregate: CompiledAggregate, state: Any,
                       values: List[Any]) -> Any:
    """The reference fold: merge per-row states left-to-right."""
    function = aggregate.function
    for value in values:
        state = function.merge(state, per_row_state(aggregate, value))
    return state


def fold_count_star(aggregate: CompiledAggregate, state: Any,
                    matched: int) -> Any:
    return state + matched


def fold_array(np, aggregate: CompiledAggregate, state: Any, data,
               null) -> Any:
    """Fold a NumPy column (``data`` plus optional NULL mask) of matched
    rows into ``state``, bit-identically to :func:`fold_python_values`."""
    function = aggregate.function
    if null is not None:
        keep = np.logical_not(
            np.broadcast_to(np.asarray(null, dtype=bool), data.shape))
        data = data[keep]  # boolean indexing preserves row order
    if isinstance(function, CountAgg):
        return state + int(data.shape[0])
    if data.dtype.kind not in ("i", "f"):
        return fold_python_values(aggregate, state, data.tolist())
    if isinstance(function, SumAgg):
        if data.dtype.kind == "i":
            # Python int addition is exact and associative; int64 is not.
            total = sum(data.tolist())
            if data.shape[0] == 0:
                return state
            return total if state is None else state + total
        if data.shape[0] == 0:
            return state
        if state is None:
            return float(np.add.accumulate(data)[-1])
        chain = np.concatenate((np.array([state], dtype=np.float64), data))
        return float(np.add.accumulate(chain)[-1])
    if isinstance(function, AvgAgg):
        total, count = state
        if data.shape[0] == 0:
            return state
        shifted = np.add(0.0, data)  # the row engine's ``0.0 + value``
        chain = np.concatenate((np.array([total], dtype=np.float64),
                                shifted))
        return (float(np.add.accumulate(chain)[-1]),
                count + int(data.shape[0]))
    if isinstance(function, (MinAgg, MaxAgg)):
        # NaN ordering and ±0.0 ties are fold-order-dependent: replicate
        # the row merge (builtin min/max) over Python scalars.
        pick = min if isinstance(function, MinAgg) else max
        for value in data.tolist():
            state = value if state is None else pick(state, value)
        return state
    return fold_python_values(aggregate, state, data.tolist())
