"""VectorSelectPlan: a columnar drop-in for the row engine's map task.

:func:`compile_select` inspects an analysed SELECT and, when the scan is
vectorizable at all (NumPy importable, no joins, batch-decodable input
format), returns a plan the engine runs *instead of* the per-record
mapper loop.  Everything the row map task observably produces is
reproduced exactly:

* ``emits`` — the post-combine ``sorted(key)`` list for aggregation jobs
  (the vector fold maintains per-key states directly, which is what the
  row path's mapper+combiner pair nets out to), or per-row projection
  tuples in row order for map-only jobs;
* ``input_records`` / ``output_records`` / the ``query.matched`` counter
  — identical values, with ``output_records`` counting *pre-combine*
  emits exactly like the row path;
* filesystem reads — the batch decoders issue the row readers' pread
  sequences (see :mod:`repro.vector.decode`).

Fallback is **per top-level expression** (each filter conjunct stage,
each group key, each aggregate argument, each projection item): if its
kernel did not compile — or raises
:class:`~repro.vector.kernels.KernelFallback` /
:class:`~repro.vector.batch.ArrayUnavailable` on some batch — that
expression is evaluated by its row-engine function over exactly the rows
the row engine would evaluate it on (filters see only rows that passed
the preceding stage).  ``fallback_rows`` counts those row evaluations
for the ``vector.fallback_rows`` trace counter.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.hive import exec as hexec
from repro.hive.aggregates import CompiledAggregate
from repro.mapreduce.splits import FileSplit
from repro.vector import decode, runtime
from repro.vector.aggfold import (fold_array, fold_count_star,
                                  fold_python_values, per_row_state)
from repro.vector.batch import ArrayUnavailable, ColumnBatch
from repro.vector.kernels import (KernelFallback, compile_kernel,
                                  is_true_mask)

_FALLBACK_ERRORS = (KernelFallback, ArrayUnavailable)


class MapTaskReport:
    """What one vectorized map task hands back to the engine."""

    __slots__ = ("emits", "input_records", "output_records", "matched",
                 "batches", "fallback_rows")

    def __init__(self):
        self.emits: List[Tuple[Any, Any]] = []
        self.input_records = 0
        self.output_records = 0
        self.matched = 0
        self.batches = 0
        self.fallback_rows = 0


class _FilterStage:
    """One WHERE conjunction stage (probe predicate, then the remainder)."""

    def __init__(self, kernel, row_filter: Callable):
        self.kernel = kernel
        self.row_filter = row_filter  # row -> bool (``is True`` semantics)

    def apply(self, np, batch: ColumnBatch, mask) -> Tuple[Any, int]:
        """Narrow ``mask``; returns ``(new_mask, rows_evaluated_by_row_fn)``."""
        if self.kernel is not None:
            try:
                value = self.kernel(batch)
            except _FALLBACK_ERRORS:
                return self._apply_rowwise(np, batch, mask)
            stage = is_true_mask(np, value, batch.num_rows)
            return np.logical_and(mask, stage), 0
        return self._apply_rowwise(np, batch, mask)

    def _apply_rowwise(self, np, batch: ColumnBatch, mask):
        rows = batch.rows()
        passes = self.row_filter
        out = mask.copy()
        alive = np.flatnonzero(mask).tolist()
        for i in alive:
            if not passes(rows[i]):
                out[i] = False
        return out, len(alive)


class _ValueStage:
    """One value-producing expression (group key / agg arg / projection)."""

    def __init__(self, kernel, row_fn: Callable):
        self.kernel = kernel
        self.row_fn = row_fn

    def vector_value(self, np, batch: ColumnBatch):
        """The kernel's VectorValue for the whole batch, or ``None`` when
        this batch must go through the row function."""
        if self.kernel is None:
            return None
        try:
            return self.kernel(batch)
        except _FALLBACK_ERRORS:
            return None

    def python_values(self, np, batch: ColumnBatch, index
                      ) -> Tuple[List[Any], int]:
        """Values (Python scalars, ``None`` for NULL lanes) for the matched
        rows, plus the number of row-function evaluations performed."""
        value = self.vector_value(np, batch)
        if value is None:
            rows = batch.rows()
            fn = self.row_fn
            picked = index.tolist()
            return [fn(rows[i]) for i in picked], len(picked)
        return _select_python(np, value, index), 0


def _select_python(np, value, index) -> List[Any]:
    """Matched-row lanes of a VectorValue as pure Python scalars."""
    data = value.data
    count = int(index.size)
    if isinstance(data, np.ndarray):
        values = data[index].tolist()
    else:
        scalar = data.item() if hasattr(data, "item") else data
        values = [scalar] * count
    null = value.null
    if null is not None:
        if isinstance(null, np.ndarray):
            picked = null[index].tolist()
        else:
            picked = [bool(null)] * count
        values = [None if is_null else v
                  for v, is_null in zip(values, picked)]
    return values


def _select_array(np, value, index):
    """Matched-row lanes as ``(data_array, null_array_or_None)``."""
    data = value.data
    if isinstance(data, np.ndarray):
        data = data[index]
    else:
        data = np.full(int(index.size), data)
    null = value.null
    if null is not None:
        if isinstance(null, np.ndarray):
            null = null[index]
        elif not bool(null):
            null = None
        else:
            null = np.ones(int(index.size), dtype=bool)
    return data, null


class _AggSpec:
    """One aggregate: fast array folding with per-batch row fallback."""

    def __init__(self, aggregate: CompiledAggregate, stage: Optional[_ValueStage]):
        self.aggregate = aggregate
        self.stage = stage  # None for count(*)

    def fold_batch(self, np, batch: ColumnBatch, index, state
                   ) -> Tuple[Any, int]:
        """Fold the matched rows of ``batch`` into ``state`` (global
        aggregation path).  Returns ``(state, fallback_rows)``."""
        if self.stage is None:  # count(*)
            return fold_count_star(self.aggregate, state,
                                   int(index.size)), 0
        value = self.stage.vector_value(np, batch)
        if value is None:
            rows = batch.rows()
            fn = self.stage.row_fn
            picked = index.tolist()
            values = [fn(rows[i]) for i in picked]
            return (fold_python_values(self.aggregate, state, values),
                    len(picked))
        try:
            data, null = _select_array(np, value, index)
        except OverflowError:  # e.g. a literal beyond int64
            rows = batch.rows()
            fn = self.stage.row_fn
            picked = index.tolist()
            values = [fn(rows[i]) for i in picked]
            return (fold_python_values(self.aggregate, state, values),
                    len(picked))
        return fold_array(np, self.aggregate, state, data, null), 0

    def fold_one(self, state, value) -> Any:
        """Fold a single row's evaluated argument (GROUP BY path)."""
        return self.aggregate.function.merge(
            state, per_row_state(self.aggregate, value))


class VectorSelectPlan:
    """The compiled columnar map task for one SELECT job."""

    def __init__(self, np, analysis: hexec.AnalyzedSelect, reader):
        self.np = np
        self.reader = reader
        self.is_group = analysis.is_group_query
        self.has_group_keys = bool(analysis.group_fns)
        self.aggregates = analysis.aggregates
        schema = analysis.table.schema
        resolver = analysis.resolver

        def kernel_for(expr):
            return compile_kernel(expr, resolver, schema, np)

        probe_pred, combined_pred = hexec._split_filter(
            analysis.stmt.where, analysis.probe_resolver)
        self.filter_stages: List[_FilterStage] = []
        if probe_pred is not None:
            self.filter_stages.append(
                _FilterStage(kernel_for(probe_pred), analysis.probe_filter))
        if combined_pred is not None:
            self.filter_stages.append(
                _FilterStage(kernel_for(combined_pred),
                             analysis.combined_filter))

        self.group_stages = [
            _ValueStage(kernel_for(expr), fn)
            for expr, fn in zip(analysis.group_exprs, analysis.group_fns)]
        self.agg_specs = [
            _AggSpec(agg, None if agg.count_star else
                     _ValueStage(kernel_for(agg.call.args[0]), agg.arg_fn))
            for agg in analysis.aggregates]
        items = hexec._expand_stars(analysis.stmt, analysis.table,
                                    analysis.joins)
        self.project_stages = [
            _ValueStage(kernel_for(item.expr), fn)
            for item, fn in zip(items, analysis.project_fns)]

    @property
    def supported_everywhere(self) -> bool:
        """True when every compiled expression has a kernel (used by tests
        and EXPLAIN tooling; fallback can still occur at runtime)."""
        stages = (self.filter_stages + self.group_stages
                  + self.project_stages
                  + [s.stage for s in self.agg_specs if s.stage is not None])
        return all(stage.kernel is not None for stage in stages)

    # ------------------------------------------------------------- execution
    def run_map_task(self, fs, split: FileSplit) -> MapTaskReport:
        return self.consume_batches(self.reader.read_batches(fs, split))

    def consume_batches(self, batches) -> MapTaskReport:
        """Run the per-batch pipeline (filter masks, folds, projection)
        over already-decoded batches.  ``run_map_task`` is this plus the
        batch decoder; the speedup benchmark calls it directly to time the
        scan hot path on pre-built batches."""
        np = self.np
        report = MapTaskReport()
        groups: Dict[Any, List[Any]] = {}
        global_states: Optional[List[Any]] = None
        for batch in batches:
            rows_in_batch = batch.num_rows
            report.input_records += rows_in_batch
            if rows_in_batch == 0:
                continue
            report.batches += 1
            mask = np.ones(rows_in_batch, dtype=bool)
            for stage in self.filter_stages:
                mask, fell_back = stage.apply(np, batch, mask)
                report.fallback_rows += fell_back
                if not mask.any():
                    break
            index = np.flatnonzero(mask)
            matched = int(index.size)
            if matched == 0:
                continue
            report.matched += matched
            if not self.is_group:
                self._project_batch(np, batch, index, report)
            elif self.has_group_keys:
                self._fold_grouped(np, batch, index, groups, report)
            else:
                if global_states is None:
                    global_states = [agg.function.initial()
                                     for agg in self.aggregates]
                for i, spec in enumerate(self.agg_specs):
                    global_states[i], fell_back = spec.fold_batch(
                        np, batch, index, global_states[i])
                    report.fallback_rows += fell_back

        if self.is_group:
            if self.has_group_keys:
                # the row path's task output after its combiner: one emit
                # per key, keys in sorted() order (mapreduce._combine)
                report.emits = [(key, tuple(groups[key]))
                                for key in sorted(groups)]
            elif global_states is not None:
                report.emits = [(hexec._GLOBAL_KEY, tuple(global_states))]
            report.output_records = report.matched
        else:
            report.output_records = len(report.emits)
        return report

    def _project_batch(self, np, batch, index, report) -> None:
        columns = []
        for stage in self.project_stages:
            values, fell_back = stage.python_values(np, batch, index)
            report.fallback_rows += fell_back
            columns.append(values)
        report.emits.extend(
            (None, row) for row in zip(*columns))

    def _fold_grouped(self, np, batch, index, groups, report) -> None:
        components = []
        for stage in self.group_stages:
            values, fell_back = stage.python_values(np, batch, index)
            report.fallback_rows += fell_back
            components.append(values)
        keys = list(zip(*components))
        argument_lists: List[Optional[List[Any]]] = []
        for spec in self.agg_specs:
            if spec.stage is None:
                argument_lists.append(None)
                continue
            values, fell_back = spec.stage.python_values(np, batch, index)
            report.fallback_rows += fell_back
            argument_lists.append(values)
        for j, key in enumerate(keys):
            states = groups.get(key)
            if states is None:
                states = [agg.function.initial() for agg in self.aggregates]
                groups[key] = states
            for a, spec in enumerate(self.agg_specs):
                value = None if argument_lists[a] is None \
                    else argument_lists[a][j]
                states[a] = spec.fold_one(states[a], value)


def compile_select(analysis: hexec.AnalyzedSelect,
                   input_format) -> Optional[VectorSelectPlan]:
    """A vector plan for this SELECT, or ``None`` when the scan itself
    cannot be vectorized (NumPy absent/disabled, joins, or an input
    format without a batch decoder)."""
    np = runtime.numpy_module()
    if np is None:
        return None
    if analysis.joins:
        return None
    reader = decode.batch_reader_for(input_format)
    if reader is None:
        return None
    return VectorSelectPlan(np, analysis, reader)
