"""Tokenizer for the HiveQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import HiveQLSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "ASC", "DESC",
    "LIMIT", "JOIN", "INNER", "ON", "AS", "AND", "OR", "NOT", "BETWEEN",
    "IN", "CREATE", "TABLE", "INDEX", "DROP", "EXPLAIN", "ANALYZE", "SHOW",
    "TABLES",
    "INDEXES", "DESCRIBE", "INSERT", "OVERWRITE", "INTO", "DIRECTORY",
    "STORED", "PARTITIONED", "IDXPROPERTIES", "WITH", "DEFERRED", "REBUILD",
    "NULL", "TRUE", "FALSE", "DISTINCT", "LIKE", "IF", "EXISTS",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*",
           "+", "-", "/", ";", "%")


@dataclass(frozen=True)
class Token:
    """One lexical token: kind in {KEYWORD, IDENT, NUMBER, STRING, SYMBOL,
    EOF}, the matched text (keywords upper-cased), and its byte offset."""

    kind: str
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.text == word.upper()

    def is_symbol(self, sym: str) -> bool:
        return self.kind == "SYMBOL" and self.text == sym


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if text.startswith("--", pos):  # line comment
            newline = text.find("\n", pos)
            pos = length if newline < 0 else newline + 1
            continue
        if ch == "'" or ch == '"':
            end = text.find(ch, pos + 1)
            if end < 0:
                raise HiveQLSyntaxError("unterminated string literal",
                                        pos, text)
            tokens.append(Token("STRING", text[pos + 1:end], pos))
            pos = end + 1
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length
                            and text[pos + 1].isdigit()):
            end = pos
            seen_dot = False
            while end < length and (text[end].isdigit()
                                    or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # "1.x" where x is not a digit is "1" "." "x"
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token("NUMBER", text[pos:end], pos))
            pos = end
            continue
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[pos:end]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), pos))
            else:
                tokens.append(Token("IDENT", word, pos))
            pos = end
            continue
        for sym in SYMBOLS:
            if text.startswith(sym, pos):
                tokens.append(Token("SYMBOL", sym, pos))
                pos += len(sym)
                break
        else:
            raise HiveQLSyntaxError(f"unexpected character {ch!r}", pos, text)
    tokens.append(Token("EOF", "", length))
    return tokens
