"""HiveQL front end: lexer, parser, AST, expression compiler, predicate
range extraction.

The supported subset covers everything the paper's workloads use:
``SELECT`` with aggregates / ``GROUP BY`` / two-table equi-``JOIN`` /
``ORDER BY`` / ``LIMIT``, ``INSERT OVERWRITE DIRECTORY``, ``CREATE TABLE``
(with ``STORED AS`` and ``PARTITIONED BY``), ``CREATE INDEX ... AS
'<handler>' IDXPROPERTIES (...)``, ``DROP``, ``SHOW``, and ``EXPLAIN``.
"""

from repro.hiveql.lexer import tokenize, Token
from repro.hiveql.parser import parse, parse_expression
from repro.hiveql import ast

__all__ = ["tokenize", "Token", "parse", "parse_expression", "ast"]
