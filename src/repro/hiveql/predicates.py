"""Predicate analysis: extract per-column range intervals from WHERE clauses.

Index handlers consume this: the Compact Index matches index-table rows
against the intervals, and DGFIndex maps intervals onto grid-file cells.
Extraction is *conservative*: intervals always over-approximate the
predicate, and ``exact`` reports whether the predicate is precisely the
conjunction of the extracted intervals (required for DGFIndex's
answer-from-headers path, where inner cells are never re-checked).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.hiveql import ast


@dataclass(frozen=True)
class Interval:
    """A one-dimensional interval; ``None`` bounds are unbounded.

    >>> Interval(low=1, high=5).contains(3)
    True
    >>> Interval(low=1, high=5, high_inclusive=True).contains(5)
    True
    """

    low: Any = None
    high: Any = None
    low_inclusive: bool = True
    high_inclusive: bool = False

    @classmethod
    def point(cls, value: Any) -> "Interval":
        return cls(low=value, high=value, low_inclusive=True,
                   high_inclusive=True)

    @property
    def is_point(self) -> bool:
        return (self.low is not None and self.low == self.high
                and self.low_inclusive and self.high_inclusive)

    @property
    def is_empty(self) -> bool:
        if self.low is None or self.high is None:
            return False
        if self.low > self.high:
            return True
        return (self.low == self.high
                and not (self.low_inclusive and self.high_inclusive))

    def contains(self, value: Any) -> bool:
        if value is None:
            return False
        if self.low is not None:
            if value < self.low:
                return False
            if value == self.low and not self.low_inclusive:
                return False
        if self.high is not None:
            if value > self.high:
                return False
            if value == self.high and not self.high_inclusive:
                return False
        return True

    def intersect(self, other: "Interval") -> "Interval":
        low, low_inc = self.low, self.low_inclusive
        if other.low is not None and (low is None or other.low > low
                                      or (other.low == low
                                          and not other.low_inclusive)):
            low, low_inc = other.low, other.low_inclusive
        high, high_inc = self.high, self.high_inclusive
        if other.high is not None and (high is None or other.high < high
                                       or (other.high == high
                                           and not other.high_inclusive)):
            high, high_inc = other.high, other.high_inclusive
        return Interval(low=low, high=high, low_inclusive=low_inc,
                        high_inclusive=high_inc)

    def overlaps_range(self, start: Any, end: Any) -> bool:
        """Does this interval intersect the half-open cell ``[start, end)``?"""
        if self.high is not None:
            if self.high < start or (self.high == start
                                     and not self.high_inclusive):
                return False
        if self.low is not None and self.low >= end:
            return False
        return True

    def covers_range(self, start: Any, end: Any) -> bool:
        """Is the half-open cell ``[start, end)`` fully inside this interval?

        Cells are left-closed/right-open, so a cell is covered when its start
        is included and everything strictly below ``end`` is included.
        """
        if self.low is not None:
            if start < self.low or (start == self.low
                                    and not self.low_inclusive):
                return False
        if self.high is not None:
            if self.high < end:
                return False
            if self.high == end and not self.high_inclusive:
                # interval stops (exclusively or not) exactly at cell end;
                # values in [start, end) are still all <= high only if
                # high >= end, and high == end exclusive still covers
                # everything strictly below end.
                return True
        return True


@dataclass
class RangeExtraction:
    """Result of analysing a WHERE clause."""

    intervals: Dict[str, Interval]
    #: True when the predicate is exactly the conjunction of ``intervals``.
    exact: bool
    #: Conjuncts that could not be turned into intervals (still must be
    #: applied as a residual row filter).
    residual: List[ast.Expr]

    def interval_for(self, column: str) -> Optional[Interval]:
        return self.intervals.get(column.lower())


def extract_ranges(where: Optional[ast.Expr]) -> RangeExtraction:
    """Analyse a WHERE clause into per-column intervals.

    Column qualifiers (``t1.userid``) are dropped: the paper's queries only
    range-restrict the fact table, and handlers verify column names against
    their own table's schema anyway.
    """
    if where is None:
        return RangeExtraction(intervals={}, exact=True, residual=[])
    conjuncts = _split_and(where)
    intervals: Dict[str, Interval] = {}
    residual: List[ast.Expr] = []
    for conjunct in conjuncts:
        extracted = _conjunct_interval(conjunct)
        if extracted is None:
            residual.append(conjunct)
            continue
        name, interval = extracted
        existing = intervals.get(name)
        intervals[name] = interval if existing is None \
            else existing.intersect(interval)
    return RangeExtraction(intervals=intervals, exact=not residual,
                           residual=residual)


def _split_and(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _conjunct_interval(expr: ast.Expr) -> Optional[Tuple[str, Interval]]:
    if isinstance(expr, ast.Between):
        if (isinstance(expr.operand, ast.ColumnRef)
                and isinstance(expr.low, ast.Literal)
                and isinstance(expr.high, ast.Literal)):
            return expr.operand.name.lower(), Interval(
                low=expr.low.value, high=expr.high.value,
                low_inclusive=True, high_inclusive=True)
        return None
    if not isinstance(expr, ast.BinaryOp):
        return None
    op, left, right = expr.op, expr.left, expr.right
    if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
        left, right = right, left
        op = _FLIP.get(op)
        if op is None:
            return None
    if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal)):
        return None
    name = left.name.lower()
    value = right.value
    if value is None:
        return None
    if op == "=":
        return name, Interval.point(value)
    if op == "<":
        return name, Interval(high=value, high_inclusive=False)
    if op == "<=":
        return name, Interval(high=value, high_inclusive=True)
    if op == ">":
        return name, Interval(low=value, low_inclusive=False)
    if op == ">=":
        return name, Interval(low=value, low_inclusive=True)
    return None
