"""AST node definitions for the HiveQL subset.

All nodes are frozen dataclasses so plans can hash/compare them; ``render()``
methods produce canonical SQL text for EXPLAIN output and error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


# --------------------------------------------------------------- expressions
class Expr:
    """Base class of all expression nodes."""

    def render(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # int, float, str, bool, or None

    def render(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None  # alias or table name qualifier

    def render(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    @property
    def qualified(self) -> str:
        return self.render().lower()


@dataclass(frozen=True)
class Star(Expr):
    """``*`` in ``SELECT *`` or ``COUNT(*)``."""

    def render(self) -> str:
        return "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # AND OR = != < <= > >= + - * / %
    left: Expr
    right: Expr

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # NOT, -
    operand: Expr

    def render(self) -> str:
        return f"({self.op} {self.operand.render()})"


@dataclass(frozen=True)
class Between(Expr):
    """``expr BETWEEN lo AND hi`` (inclusive on both ends, as in SQL)."""

    operand: Expr
    low: Expr
    high: Expr

    def render(self) -> str:
        return (f"({self.operand.render()} BETWEEN {self.low.render()} "
                f"AND {self.high.render()})")


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    options: Tuple[Expr, ...]

    def render(self) -> str:
        opts = ", ".join(o.render() for o in self.options)
        return f"({self.operand.render()} IN ({opts}))"


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # lower-cased
    args: Tuple[Expr, ...]
    distinct: bool = False

    def render(self) -> str:
        inner = ", ".join(a.render() for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


#: Aggregate function names the planner recognizes.
AGGREGATE_FUNCTIONS = {"sum", "count", "avg", "min", "max"}


def is_aggregate_call(expr: Expr) -> bool:
    return isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCTIONS


def contains_aggregate(expr: Expr) -> bool:
    if is_aggregate_call(expr):
        return True
    for child in expr_children(expr):
        if contains_aggregate(child):
            return True
    return False


def expr_children(expr: Expr) -> List[Expr]:
    if isinstance(expr, BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, UnaryOp):
        return [expr.operand]
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, InList):
        return [expr.operand, *expr.options]
    if isinstance(expr, FuncCall):
        return list(expr.args)
    return []


def collect_column_refs(expr: Expr) -> List[ColumnRef]:
    """All column references in an expression tree, in visit order."""
    refs: List[ColumnRef] = []

    def walk(node: Expr) -> None:
        if isinstance(node, ColumnRef):
            refs.append(node)
        for child in expr_children(node):
            walk(child)

    walk(expr)
    return refs


# ---------------------------------------------------------------- statements
class Statement:
    """Base class of all statement nodes."""


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return self.expr.render()


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name columns may be qualified with."""
        return (self.alias or self.name).lower()


@dataclass(frozen=True)
class Join:
    table: TableRef
    condition: Expr  # equi-join condition


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class SelectStmt(Statement):
    items: Tuple[SelectItem, ...]
    table: TableRef
    joins: Tuple[Join, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    #: INSERT OVERWRITE DIRECTORY '<path>' SELECT ... (paper's join query)
    insert_directory: Optional[str] = None

    @property
    def has_aggregates(self) -> bool:
        return any(contains_aggregate(item.expr) for item in self.items)

    @property
    def is_plain_aggregation(self) -> bool:
        """All select items are aggregate calls and there is no GROUP BY —
        the query shape DGFIndex can answer partly from pre-computed headers
        (paper's "aggregation or UDF like query")."""
        return (not self.group_by
                and all(is_aggregate_call(item.expr) for item in self.items))


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str  # int/bigint/double/string/date


@dataclass(frozen=True)
class CreateTableStmt(Statement):
    name: str
    columns: Tuple[ColumnDef, ...]
    stored_as: str = "TEXTFILE"  # TEXTFILE | RCFILE | SEQUENCEFILE
    partitioned_by: Tuple[ColumnDef, ...] = ()
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndexStmt(Statement):
    """``CREATE INDEX name ON TABLE t(cols) AS '<handler>'
    [WITH DEFERRED REBUILD] IDXPROPERTIES ('k'='v', ...)`` — Listing 3."""

    name: str
    table: str
    columns: Tuple[str, ...]
    handler: str
    properties: Dict[str, str] = field(default_factory=dict)
    deferred_rebuild: bool = False

    # Dict makes the dataclass unhashable; that is fine for statements.
    __hash__ = None


@dataclass(frozen=True)
class DropTableStmt(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class DropIndexStmt(Statement):
    name: str
    table: str


@dataclass(frozen=True)
class ShowTablesStmt(Statement):
    pass


@dataclass(frozen=True)
class ShowIndexesStmt(Statement):
    table: str


@dataclass(frozen=True)
class DescribeStmt(Statement):
    table: str


@dataclass(frozen=True)
class ExplainStmt(Statement):
    query: SelectStmt
    #: ``EXPLAIN ANALYZE``: execute the query and render its trace tree.
    analyze: bool = False
