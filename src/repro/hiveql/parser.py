"""Recursive-descent parser for the HiveQL subset."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import HiveQLSyntaxError
from repro.hiveql import ast
from repro.hiveql.lexer import Token, tokenize


def parse(text: str) -> ast.Statement:
    """Parse one statement (a trailing ``;`` is allowed)."""
    parser = _Parser(text)
    stmt = parser.statement()
    parser.accept_symbol(";")
    parser.expect_eof()
    return stmt


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and index properties)."""
    parser = _Parser(text)
    expr = parser.expression()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------- utilities
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def error(self, message: str) -> HiveQLSyntaxError:
        return HiveQLSyntaxError(message, self.current.position, self.text)

    def accept_keyword(self, *words: str) -> Optional[Token]:
        if any(self.current.is_keyword(w) for w in words):
            return self.advance()
        return None

    def expect_keyword(self, word: str) -> Token:
        token = self.accept_keyword(word)
        if token is None:
            raise self.error(f"expected {word}, got {self.current.text!r}")
        return token

    def accept_symbol(self, sym: str) -> Optional[Token]:
        if self.current.is_symbol(sym):
            return self.advance()
        return None

    def expect_symbol(self, sym: str) -> Token:
        token = self.accept_symbol(sym)
        if token is None:
            raise self.error(f"expected {sym!r}, got {self.current.text!r}")
        return token

    def expect_ident(self) -> str:
        if self.current.kind != "IDENT":
            raise self.error(f"expected identifier, got {self.current.text!r}")
        return self.advance().text

    def expect_string(self) -> str:
        if self.current.kind != "STRING":
            raise self.error(
                f"expected string literal, got {self.current.text!r}")
        return self.advance().text

    def expect_eof(self) -> None:
        if self.current.kind != "EOF":
            raise self.error(f"unexpected trailing input {self.current.text!r}")

    # ------------------------------------------------------------ statements
    def statement(self) -> ast.Statement:
        if self.accept_keyword("EXPLAIN"):
            analyze = self.accept_keyword("ANALYZE") is not None
            query = self.statement()
            if not isinstance(query, ast.SelectStmt):
                raise self.error("EXPLAIN supports SELECT statements only")
            return ast.ExplainStmt(query=query, analyze=analyze)
        if self.current.is_keyword("SELECT"):
            return self.select_statement()
        if self.current.is_keyword("INSERT"):
            return self.insert_statement()
        if self.current.is_keyword("CREATE"):
            return self.create_statement()
        if self.current.is_keyword("DROP"):
            return self.drop_statement()
        if self.current.is_keyword("SHOW"):
            return self.show_statement()
        if self.accept_keyword("DESCRIBE"):
            return ast.DescribeStmt(table=self.expect_ident())
        raise self.error(f"unknown statement start {self.current.text!r}")

    def insert_statement(self) -> ast.SelectStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("OVERWRITE")
        self.expect_keyword("DIRECTORY")
        directory = self.expect_string()
        select = self.select_statement()
        return ast.SelectStmt(
            items=select.items, table=select.table, joins=select.joins,
            where=select.where, group_by=select.group_by,
            order_by=select.order_by, limit=select.limit,
            insert_directory=directory)

    def select_statement(self) -> ast.SelectStmt:
        self.expect_keyword("SELECT")
        items = self.select_items()
        self.expect_keyword("FROM")
        table = self.table_ref()
        joins: List[ast.Join] = []
        while self.accept_keyword("JOIN") or (
                self.current.is_keyword("INNER")
                and self.advance() and self.expect_keyword("JOIN")):
            join_table = self.table_ref()
            self.expect_keyword("ON")
            condition = self.expression()
            joins.append(ast.Join(table=join_table, condition=condition))
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        group_by: Tuple[ast.Expr, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = tuple(self.expression_list())
        order_by: List[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.expression()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                order_by.append(ast.OrderItem(expr=expr, ascending=ascending))
                if not self.accept_symbol(","):
                    break
        limit = None
        if self.accept_keyword("LIMIT"):
            if self.current.kind != "NUMBER":
                raise self.error("LIMIT expects a number")
            limit = int(self.advance().text)
        return ast.SelectStmt(items=tuple(items), table=table,
                              joins=tuple(joins), where=where,
                              group_by=group_by, order_by=tuple(order_by),
                              limit=limit)

    def select_items(self) -> List[ast.SelectItem]:
        items = []
        while True:
            if self.accept_symbol("*"):
                items.append(ast.SelectItem(expr=ast.Star()))
            else:
                expr = self.expression()
                alias = None
                if self.accept_keyword("AS"):
                    alias = self.expect_ident()
                elif self.current.kind == "IDENT":
                    alias = self.advance().text
                items.append(ast.SelectItem(expr=expr, alias=alias))
            if not self.accept_symbol(","):
                return items

    def table_ref(self) -> ast.TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.advance().text
        return ast.TableRef(name=name, alias=alias)

    def expression_list(self) -> List[ast.Expr]:
        exprs = [self.expression()]
        while self.accept_symbol(","):
            exprs.append(self.expression())
        return exprs

    # ----------------------------------------------------------- expressions
    def expression(self) -> ast.Expr:
        return self.or_expr()

    def or_expr(self) -> ast.Expr:
        left = self.and_expr()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp(op="OR", left=left, right=self.and_expr())
        return left

    def and_expr(self) -> ast.Expr:
        left = self.not_expr()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp(op="AND", left=left, right=self.not_expr())
        return left

    def not_expr(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp(op="NOT", operand=self.not_expr())
        return self.comparison()

    def comparison(self) -> ast.Expr:
        left = self.additive()
        if self.accept_keyword("BETWEEN"):
            low = self.additive()
            self.expect_keyword("AND")
            high = self.additive()
            return ast.Between(operand=left, low=low, high=high)
        if self.accept_keyword("IN"):
            self.expect_symbol("(")
            options = tuple(self.expression_list())
            self.expect_symbol(")")
            return ast.InList(operand=left, options=options)
        if self.accept_keyword("LIKE"):
            return ast.BinaryOp(op="LIKE", left=left,
                                right=self.additive())
        for sym in ("<=", ">=", "<>", "!=", "=", "<", ">"):
            if self.accept_symbol(sym):
                op = "!=" if sym == "<>" else sym
                return ast.BinaryOp(op=op, left=left, right=self.additive())
        return left

    def additive(self) -> ast.Expr:
        left = self.multiplicative()
        while True:
            if self.accept_symbol("+"):
                left = ast.BinaryOp(op="+", left=left,
                                    right=self.multiplicative())
            elif self.accept_symbol("-"):
                left = ast.BinaryOp(op="-", left=left,
                                    right=self.multiplicative())
            else:
                return left

    def multiplicative(self) -> ast.Expr:
        left = self.unary()
        while True:
            if self.accept_symbol("*"):
                left = ast.BinaryOp(op="*", left=left, right=self.unary())
            elif self.accept_symbol("/"):
                left = ast.BinaryOp(op="/", left=left, right=self.unary())
            elif self.accept_symbol("%"):
                left = ast.BinaryOp(op="%", left=left, right=self.unary())
            else:
                return left

    def unary(self) -> ast.Expr:
        if self.accept_symbol("-"):
            operand = self.unary()
            if isinstance(operand, ast.Literal) \
                    and isinstance(operand.value, (int, float)):
                # Fold negative numeric literals so predicate analysis sees
                # them as plain literals (e.g. ``x > -1``).
                return ast.Literal(value=-operand.value)
            return ast.UnaryOp(op="-", operand=operand)
        return self.primary()

    def primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return ast.Literal(value=value)
        if token.kind == "STRING":
            self.advance()
            return ast.Literal(value=token.text)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(value=None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(value=True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(value=False)
        if self.accept_symbol("("):
            expr = self.expression()
            self.expect_symbol(")")
            return expr
        if token.kind == "IDENT":
            return self.identifier_expr()
        raise self.error(f"unexpected token {token.text!r} in expression")

    def identifier_expr(self) -> ast.Expr:
        name = self.expect_ident()
        if self.accept_symbol("("):  # function call
            distinct = bool(self.accept_keyword("DISTINCT"))
            args: List[ast.Expr] = []
            if self.accept_symbol("*"):
                args.append(ast.Star())
            elif not self.current.is_symbol(")"):
                args = self.expression_list()
            self.expect_symbol(")")
            return ast.FuncCall(name=name.lower(), args=tuple(args),
                                distinct=distinct)
        if self.accept_symbol("."):
            column = self.expect_ident()
            return ast.ColumnRef(name=column, table=name)
        return ast.ColumnRef(name=name)

    # ------------------------------------------------------------ create/drop
    def create_statement(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self.create_table()
        if self.accept_keyword("INDEX"):
            return self.create_index()
        raise self.error("expected TABLE or INDEX after CREATE")

    def create_table(self) -> ast.CreateTableStmt:
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident()
        self.expect_symbol("(")
        columns = [self.column_def()]
        while self.accept_symbol(","):
            columns.append(self.column_def())
        self.expect_symbol(")")
        partitioned: List[ast.ColumnDef] = []
        if self.accept_keyword("PARTITIONED"):
            self.expect_keyword("BY")
            self.expect_symbol("(")
            partitioned.append(self.column_def())
            while self.accept_symbol(","):
                partitioned.append(self.column_def())
            self.expect_symbol(")")
        stored_as = "TEXTFILE"
        if self.accept_keyword("STORED"):
            self.expect_keyword("AS")
            stored_as = self.expect_ident().upper()
        return ast.CreateTableStmt(name=name, columns=tuple(columns),
                                   stored_as=stored_as,
                                   partitioned_by=tuple(partitioned),
                                   if_not_exists=if_not_exists)

    def column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        type_name = self.expect_ident().lower()
        return ast.ColumnDef(name=name, type_name=type_name)

    def create_index(self) -> ast.CreateIndexStmt:
        name = self.expect_ident()
        self.expect_keyword("ON")
        self.expect_keyword("TABLE")
        table = self.expect_ident()
        self.expect_symbol("(")
        columns = [self.expect_ident()]
        while self.accept_symbol(","):
            columns.append(self.expect_ident())
        self.expect_symbol(")")
        self.expect_keyword("AS")
        handler = self.expect_string()
        deferred = False
        if self.accept_keyword("WITH"):
            self.expect_keyword("DEFERRED")
            self.expect_keyword("REBUILD")
            deferred = True
        properties: Dict[str, str] = {}
        if self.accept_keyword("IDXPROPERTIES"):
            self.expect_symbol("(")
            while True:
                key = self.expect_string()
                self.expect_symbol("=")
                properties[key] = self.expect_string()
                if not self.accept_symbol(","):
                    break
            self.expect_symbol(")")
        return ast.CreateIndexStmt(name=name, table=table,
                                   columns=tuple(columns), handler=handler,
                                   properties=properties,
                                   deferred_rebuild=deferred)

    def drop_statement(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            if_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("EXISTS")
                if_exists = True
            return ast.DropTableStmt(name=self.expect_ident(),
                                     if_exists=if_exists)
        if self.accept_keyword("INDEX"):
            name = self.expect_ident()
            self.expect_keyword("ON")
            return ast.DropIndexStmt(name=name, table=self.expect_ident())
        raise self.error("expected TABLE or INDEX after DROP")

    def show_statement(self) -> ast.Statement:
        self.expect_keyword("SHOW")
        if self.accept_keyword("TABLES"):
            return ast.ShowTablesStmt()
        if self.accept_keyword("INDEXES"):
            self.expect_keyword("ON")
            return ast.ShowIndexesStmt(table=self.expect_ident())
        raise self.error("expected TABLES or INDEXES after SHOW")
