"""Compiles AST expressions into Python callables over row tuples.

A *resolver* maps (possibly qualified) column names to row positions; the
compiled function then evaluates with plain tuple indexing, which keeps the
per-record cost of scans low.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ExecutionError, SemanticError
from repro.hiveql import ast

RowFn = Callable[[Sequence[Any]], Any]


class ColumnResolver:
    """Maps column references to positions in the runtime row tuple.

    Registered names include both bare (``userid``) and qualified
    (``t1.userid``) forms; bare names must be unambiguous.
    """

    def __init__(self):
        self._positions: Dict[str, int] = {}
        self._ambiguous: set = set()

    @classmethod
    def for_schema(cls, schema, binding: Optional[str] = None,
                   offset: int = 0) -> "ColumnResolver":
        resolver = cls()
        resolver.add_schema(schema, binding, offset)
        return resolver

    def add_schema(self, schema, binding: Optional[str],
                   offset: int = 0) -> None:
        for i, column in enumerate(schema.columns):
            self.add(column.name, offset + i, binding)

    def add(self, name: str, position: int, binding: Optional[str]) -> None:
        bare = name.lower()
        if bare in self._positions and self._positions[bare] != position:
            self._ambiguous.add(bare)
        self._positions.setdefault(bare, position)
        if binding:
            self._positions[f"{binding.lower()}.{bare}"] = position

    def resolve(self, ref: ast.ColumnRef) -> int:
        key = ref.qualified
        if key in self._positions:
            if ref.table is None and ref.name.lower() in self._ambiguous:
                raise SemanticError(f"ambiguous column {ref.name!r}")
            return self._positions[key]
        raise SemanticError(f"unknown column {ref.render()!r}")

    def try_resolve(self, ref: ast.ColumnRef) -> Optional[int]:
        try:
            return self.resolve(ref)
        except SemanticError:
            return None


def compile_expr(expr: ast.Expr, resolver: ColumnResolver) -> RowFn:
    """Compile a scalar (non-aggregate) expression into ``row -> value``."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.ColumnRef):
        position = resolver.resolve(expr)
        return lambda row: row[position]
    if isinstance(expr, ast.Star):
        return lambda row: tuple(row)
    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand, resolver)
        if expr.op == "NOT":
            return lambda row: _not(operand(row))
        if expr.op == "-":
            return lambda row: _neg(operand(row))
        raise SemanticError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.Between):
        operand = compile_expr(expr.operand, resolver)
        low = compile_expr(expr.low, resolver)
        high = compile_expr(expr.high, resolver)

        def between(row):
            value = operand(row)
            if value is None:
                return None
            return low(row) <= value <= high(row)

        return between
    if isinstance(expr, ast.InList):
        operand = compile_expr(expr.operand, resolver)
        options = [compile_expr(o, resolver) for o in expr.options]

        def in_list(row):
            value = operand(row)
            if value is None:
                return None
            return any(value == option(row) for option in options)

        return in_list
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, resolver)
    if isinstance(expr, ast.FuncCall):
        return _compile_scalar_func(expr, resolver)
    raise SemanticError(f"cannot evaluate expression {expr!r}")


def _compile_binary(expr: ast.BinaryOp, resolver: ColumnResolver) -> RowFn:
    left = compile_expr(expr.left, resolver)
    right = compile_expr(expr.right, resolver)
    op = expr.op
    if op == "AND":
        def and_(row):
            lhs = left(row)
            if lhs is False:
                return False
            rhs = right(row)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True
        return and_
    if op == "OR":
        def or_(row):
            lhs = left(row)
            if lhs is True:
                return True
            rhs = right(row)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return False
        return or_
    comparison = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }.get(op)
    if comparison is not None:
        def compare(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            return comparison(a, b)
        return compare
    if op == "LIKE":
        def like(row):
            value = left(row)
            pattern = right(row)
            if value is None or pattern is None:
                return None
            return _like_match(str(value), str(pattern))
        return like
    arithmetic = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": _div,
        "%": lambda a, b: a % b,
    }.get(op)
    if arithmetic is not None:
        def arith(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            return arithmetic(a, b)
        return arith
    raise SemanticError(f"unknown operator {op!r}")


def _compile_scalar_func(expr: ast.FuncCall, resolver: ColumnResolver) -> RowFn:
    if expr.name in ast.AGGREGATE_FUNCTIONS:
        raise SemanticError(
            f"aggregate {expr.name}() in a scalar context; aggregates are "
            "handled by the group-by operator")
    args = [compile_expr(a, resolver) for a in expr.args]
    fn = _SCALAR_FUNCTIONS.get(expr.name)
    if fn is None:
        raise SemanticError(f"unknown function {expr.name!r}")
    return lambda row: fn(*[a(row) for a in args])


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE: ``%`` matches any run, ``_`` any single character."""
    import re
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern)
    return re.fullmatch(regex, value) is not None


def _div(a, b):
    if b == 0:
        return None  # SQL semantics: Hive returns NULL on division by zero
    return a / b


def _not(value):
    if value is None:
        return None
    return not value


def _neg(value):
    if value is None:
        return None
    return -value


_SCALAR_FUNCTIONS = {
    "abs": lambda v: None if v is None else abs(v),
    "round": lambda v, d=0: None if v is None else round(v, int(d)),
    "floor": lambda v: None if v is None else int(v // 1),
    "ceil": lambda v: None if v is None else -int(-v // 1),
    "lower": lambda s: None if s is None else s.lower(),
    "upper": lambda s: None if s is None else s.upper(),
    "length": lambda s: None if s is None else len(s),
    "concat": lambda *parts: None if any(p is None for p in parts)
    else "".join(str(p) for p in parts),
    "year": lambda d: None if d is None else int(str(d)[:4]),
    "month": lambda d: None if d is None else int(str(d)[5:7]),
    "day": lambda d: None if d is None else int(str(d)[8:10]),
}


def predicate_fn(where: Optional[ast.Expr],
                 resolver: ColumnResolver) -> Callable[[Sequence[Any]], bool]:
    """Compile a WHERE clause into a boolean row filter (NULL -> False)."""
    if where is None:
        return lambda row: True
    compiled = compile_expr(where, resolver)
    return lambda row: compiled(row) is True
