"""The in-process MapReduce job runner.

Tasks run either sequentially (the default) or on a thread pool
(:class:`~repro.mapreduce.cluster.ExecutionConfig` with ``max_workers > 1``),
and the two modes produce **byte-identical** :class:`JobResult`s: every map
and reduce task accumulates its counters and I/O stats task-locally (see
:func:`repro.hdfs.metrics.task_io_scope`), and the engine merges task
outcomes at each phase barrier in deterministic order — split order for map
tasks, partition order for reduce tasks, with reduce keys processed in
sorted order inside each partition.  The differential harness
(``tests/harness/differential.py``) enforces this equivalence for generated
workloads; the *simulated* parallelism of the paper's cluster remains the
cost model's slot/wave arithmetic over the measured counters.
"""

from __future__ import annotations

import numbers
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import MapReduceError, TaskAttemptFailed
from repro.hdfs.filesystem import HDFS
from repro.hdfs.metrics import task_io_scope
from repro.mapreduce.cluster import ExecutionConfig, SEQUENTIAL
from repro.mapreduce.counters import Counters
from repro.mapreduce.cost import TaskStats
from repro.mapreduce.job import Job, JobResult, TaskContext
from repro.obs.trace import (FAULT_COUNTER_PREFIX, FAULT_SPAN_PREFIX,
                             NULL_TRACER, VECTOR_ATTR, VECTOR_COUNTER_PREFIX,
                             Span, Tracer)


def estimate_size(obj: Any) -> int:
    """Cheap serialized-size estimate used for shuffle-byte accounting.

    Models Hadoop's writable encoding: small fixed overhead per value plus
    the payload size; containers add their elements.  Unordered containers
    (dicts, sets) sum their per-entry sizes in sorted order so the result —
    and therefore the shuffle-byte counters merged under the parallel
    engine — is identical for any insertion order or hash seed.
    """
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, bytes):
        return len(obj)
    # Foreign numeric scalars (e.g. NumPy's int64/float64, which are not
    # Python ints and would otherwise fall through to the opaque-object
    # default of 16) size like their Python counterparts, so any scalar
    # that leaks out of an array fold cannot skew shuffle-byte accounting.
    if isinstance(obj, (numbers.Integral, numbers.Real)):
        return 8
    if isinstance(obj, (tuple, list)):
        return 4 + sum(estimate_size(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return 4 + sum(sorted(estimate_size(v) for v in obj))
    if isinstance(obj, dict):
        return 4 + sum(sorted(estimate_size(k) + estimate_size(v)
                              for k, v in obj.items()))
    return 16


def stable_hash(key: Any) -> int:
    """Deterministic across processes (unlike ``hash`` on strings), so
    reorganized table layouts are identical between runs."""
    return zlib.crc32(repr(key).encode("utf-8"))


@dataclass
class _TaskOutcome:
    """Everything one task hands back to the barrier merge."""

    task_id: int
    emits: List[Tuple[Any, Any]]
    counters: Counters
    input_records: int = 0
    output_records: int = 0
    input_bytes: int = 0
    output_bytes: int = 0
    #: the task's trace span, attached to the phase span at the barrier
    #: (in task order) so trace shape never depends on thread scheduling.
    span: Optional[Span] = None
    #: ``fault:*`` event spans accumulated by the recovery wrapper (crashed
    #: attempts, retries, speculation); attached before the task span at
    #: the barrier and stripped by the chaos harness's trace comparison.
    fault_spans: List[Span] = field(default_factory=list)

    def stats(self, kind: str) -> TaskStats:
        return TaskStats(task_id=self.task_id, kind=kind,
                         input_records=self.input_records,
                         output_records=self.output_records,
                         input_bytes=self.input_bytes,
                         output_bytes=self.output_bytes)


class MapReduceEngine:
    """Runs :class:`~repro.mapreduce.job.Job` objects against an HDFS."""

    def __init__(self, fs: HDFS, execution: Optional[ExecutionConfig] = None,
                 tracer: Optional[Tracer] = None, faults=None):
        self.fs = fs
        self.execution = execution if execution is not None else SEQUENTIAL
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: optional :class:`repro.faults.FaultInjector`; when set, every
        #: task runs under the bounded-retry/speculation wrapper
        #: (:meth:`_run_attempts`).
        self.faults = faults
        self.jobs_run = 0
        # Concurrent queries (the query service) may call run() from many
        # threads at once; the counter increment must not lose updates.
        self._jobs_run_lock = threading.Lock()

    def run(self, job: Job) -> JobResult:
        job.validate()
        if self.faults is not None:
            # Scheduled mid-query datanode kills fire at job start: the
            # engine is still single-threaded here, so the kill lands at
            # the identical point for every worker count.  The alive guard
            # keeps the registry from double-recording when a layout
            # failover replans and re-runs a job with a matching name.
            for node_id in self.faults.scheduled_datanode_kills(job.name):
                if self.fs.datanodes[node_id].alive:
                    self.fs.kill_datanode(node_id)
        execution = job.execution if job.execution is not None \
            else self.execution
        workers = execution.worker_count()
        with self.tracer.span("mr_job", job=job.name) as job_span:
            result = self._run(job, workers, job_span)
        result.trace_span = job_span if self.tracer.enabled else None
        with self._jobs_run_lock:
            self.jobs_run += 1
        return result

    def _run(self, job: Job, workers: int, job_span: Span) -> JobResult:
        result = JobResult(job_name=job.name)
        stats = result.stats
        counters = result.counters

        splits = job.splits
        if splits is None:
            splits = job.input_format.get_splits(self.fs, job.input_paths)
        stats.map_tasks = len(splits)

        num_partitions = max(1, job.num_reducers)
        partitioner = job.partitioner or stable_hash

        with self.tracer.span("map_phase", tasks=len(splits)) as map_span:
            map_outcomes = self._run_phase(
                [lambda tid=task_id, s=split: self._run_attempts(
                    job, "map", tid,
                    lambda attempt, crash, tid=tid, s=s:
                        self._map_task(job, tid, s, attempt, crash))
                 for task_id, split in enumerate(splits)], workers)

            # Barrier: merge map outcomes in split order, so shuffle value
            # lists, counters and stats are identical for any worker count.
            for outcome in map_outcomes:
                self._merge_fault_spans(map_span, outcome)
                if outcome.span is not None:
                    map_span.attach(outcome.span)
                stats.map_input_records += outcome.input_records
                stats.map_input_bytes += outcome.input_bytes
                stats.map_output_records += outcome.output_records
                counters.merge(outcome.counters)
                result.task_stats.append(outcome.stats("map"))
            map_span.add("input_records", stats.map_input_records)
            map_span.add("input_bytes", stats.map_input_bytes)
            map_span.add("output_records", stats.map_output_records)

        shuffle: List[Dict[Any, List[Any]]] = [dict()
                                               for _ in range(num_partitions)]
        map_only_output: List[Tuple[Any, Any]] = []
        if job.reducer is None:
            for outcome in map_outcomes:
                map_only_output.extend(outcome.emits)
            result.output = map_only_output
            counters.set("job", "map_tasks", stats.map_tasks)
            return result

        with self.tracer.span("shuffle",
                              partitions=num_partitions) as shuffle_span:
            for outcome in map_outcomes:
                for key, value in outcome.emits:
                    stats.shuffle_bytes += (estimate_size(key)
                                            + estimate_size(value))
                    bucket = shuffle[partitioner(key) % num_partitions]
                    bucket.setdefault(key, []).append(value)
            shuffle_span.add("shuffle_bytes", stats.shuffle_bytes)
            shuffle_span.add("shuffle_records", stats.map_output_records)

        with self.tracer.span("reduce_phase") as reduce_span:
            reduce_outcomes = self._run_phase(
                [lambda tid=task_id, b=bucket: self._run_attempts(
                    job, "reduce", tid,
                    lambda attempt, crash, tid=tid, b=b:
                        self._reduce_task(job, tid, b, attempt, crash))
                 for task_id, bucket in enumerate(shuffle)
                 if bucket or num_partitions == 1], workers)
            for outcome in reduce_outcomes:
                self._merge_fault_spans(reduce_span, outcome)
                if outcome.span is not None:
                    reduce_span.attach(outcome.span)
                stats.reduce_tasks += 1
                stats.reduce_input_records += outcome.input_records
                stats.output_bytes += outcome.output_bytes
                counters.merge(outcome.counters)
                result.task_stats.append(outcome.stats("reduce"))
                result.output.extend(outcome.emits)
            reduce_span.set("tasks", stats.reduce_tasks)
            reduce_span.add("input_records", stats.reduce_input_records)
            reduce_span.add("output_bytes", stats.output_bytes)

        counters.set("job", "map_tasks", stats.map_tasks)
        counters.set("job", "reduce_tasks", stats.reduce_tasks)
        return result

    # -------------------------------------------------------------- recovery
    @staticmethod
    def _merge_fault_spans(phase_span: Span, outcome: _TaskOutcome) -> None:
        """Attach a task's fault event spans (in the deterministic order
        the recovery wrapper recorded them) and mirror each as a
        ``fault.*`` counter on the phase span."""
        for fault_span in outcome.fault_spans:
            phase_span.attach(fault_span)
            phase_span.add(FAULT_COUNTER_PREFIX
                           + fault_span.name[len(FAULT_SPAN_PREFIX):])

    def _run_attempts(self, job: Job, kind: str, task_id: int,
                      run: Callable[[int, Optional[int]], _TaskOutcome]
                      ) -> _TaskOutcome:
        """Run one task under the fault plan: bounded retries with
        simulated backoff, then (for map tasks) speculative execution.

        ``run(attempt, crash_after)`` executes one attempt; the wrapper
        asks the plan for each attempt's crash point and discards crashed
        attempts entirely — their emits, counters and stats never reach
        the barrier, so merged results are byte-identical to a fault-free
        run.  A straggling map task gets a speculative duplicate whose
        outcome wins (mappers are deterministic, so winner choice cannot
        change results); if the duplicate itself crashes, the original
        outcome stands.  Every fault and recovery is recorded in the
        injector's registry and as ``fault:*`` event spans on the outcome.
        """
        faults = self.faults
        if faults is None:
            return run(0, None)
        max_attempts = job.max_task_attempts \
            if job.max_task_attempts is not None \
            else faults.policy.max_task_attempts
        traced = self.tracer.enabled
        fault_spans: List[Span] = []

        def note_crash(attempt: int, exc: TaskAttemptFailed,
                       will_retry: bool) -> None:
            records = getattr(exc, "records_read", 0)
            faults.task_crashed(job.name, kind, task_id, attempt,
                                records_read=records, will_retry=will_retry)
            if traced:
                fault_spans.append(Span(
                    name=FAULT_SPAN_PREFIX + "task_crash",
                    attrs={"task": task_id, "attempt": attempt,
                           "records": records}))

        attempt = 0
        while True:
            crash_after = faults.task_crash_point(job.name, kind, task_id,
                                                  attempt)
            try:
                outcome = run(attempt, crash_after)
                break
            except TaskAttemptFailed as exc:
                will_retry = attempt + 1 < max_attempts
                note_crash(attempt, exc, will_retry)
                if not will_retry:
                    raise MapReduceError(
                        f"job {job.name!r}: {kind} task {task_id} failed "
                        f"permanently after {attempt + 1} attempts") from exc
                attempt += 1
        if attempt > 0:
            faults.task_recovered(job.name, kind, task_id, attempt)
            if traced:
                fault_spans.append(Span(
                    name=FAULT_SPAN_PREFIX + "task_retry",
                    attrs={"task": task_id, "attempt": attempt}))

        if kind == "map" and faults.is_straggler(job.name, kind, task_id):
            faults.straggler_detected(job.name, kind, task_id)
            if traced:
                fault_spans.append(Span(
                    name=FAULT_SPAN_PREFIX + "task_straggler",
                    attrs={"task": task_id}))
            spec_attempt = attempt + 1
            crash_after = faults.task_crash_point(job.name, kind, task_id,
                                                  spec_attempt)
            try:
                speculative = run(spec_attempt, crash_after)
            except TaskAttemptFailed as exc:
                # The duplicate died; the original outcome stands.
                note_crash(spec_attempt, exc, will_retry=False)
            else:
                faults.speculative_won(job.name, kind, task_id, spec_attempt)
                if traced:
                    fault_spans.append(Span(
                        name=FAULT_SPAN_PREFIX + "speculative_win",
                        attrs={"task": task_id, "attempt": spec_attempt}))
                outcome = speculative

        outcome.fault_spans = fault_spans
        return outcome

    @staticmethod
    def _maybe_crash(job: Job, kind: str, task_id: int, attempt: int,
                     crash_after: Optional[int], records_read: int) -> None:
        """Fire the injected crash once ``records_read`` reaches the
        attempt's crash point (0 = at startup; None = the attempt is
        clean).  The raised :class:`~repro.errors.TaskAttemptFailed`
        carries ``records_read`` for the registry."""
        if crash_after is None or records_read < crash_after:
            return
        exc = TaskAttemptFailed(
            f"injected crash: job {job.name!r} {kind} task {task_id} "
            f"attempt {attempt} after {records_read} records")
        exc.records_read = records_read
        raise exc

    # ----------------------------------------------------------------- tasks
    def _run_phase(self, thunks: List[Callable[[], _TaskOutcome]],
                   workers: int) -> List[_TaskOutcome]:
        """Execute one phase's tasks, returning outcomes in task order."""
        if workers <= 1 or len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        with ThreadPoolExecutor(max_workers=min(workers, len(thunks)),
                                thread_name_prefix="mr-task") as pool:
            futures = [pool.submit(thunk) for thunk in thunks]
            return [future.result() for future in futures]

    def _map_task(self, job: Job, task_id: int, split, attempt: int = 0,
                  crash_after: Optional[int] = None) -> _TaskOutcome:
        if job.vector_plan is not None and crash_after is None:
            # Crash-injected attempts stay on the row path: the batch path
            # cannot reproduce a crash *between* record N and N+1, and the
            # recovery wrapper discards crashed attempts entirely, so the
            # merged result is identical either way.
            return self._vector_map_task(job, task_id, split)
        emits: List[Tuple[Any, Any]] = []
        counters = Counters()
        ctx = TaskContext(task_id, self.fs, counters,
                          lambda k, v, buf=emits: buf.append((k, v)),
                          attempt=attempt)
        ctx.split = split
        outcome = _TaskOutcome(task_id=task_id, emits=emits,
                               counters=counters)
        with self.tracer.task_span("map", task=task_id) as span:
            with task_io_scope() as scope:
                self._maybe_crash(job, "map", task_id, attempt, crash_after, 0)
                for key, value in job.input_format.read_split(self.fs, split):
                    outcome.input_records += 1
                    job.mapper(key, value, ctx)
                    self._maybe_crash(job, "map", task_id, attempt,
                                      crash_after, outcome.input_records)
                outcome.input_bytes = scope.captured(self.fs.io).bytes_read
            outcome.output_records = len(emits)
            if job.reducer is not None and job.combiner is not None:
                outcome.emits = self._combine(job, emits, counters)
            span.add("input_records", outcome.input_records)
            span.add("input_bytes", outcome.input_bytes)
            span.add("output_records", outcome.output_records)
        if self.tracer.enabled:
            outcome.span = span
        return outcome

    def _vector_map_task(self, job: Job, task_id: int, split) -> _TaskOutcome:
        """Columnar map task: identical outcome to :meth:`_map_task`, plus
        ``vector.*`` trace counters (strippable, like ``fault:*`` data)."""
        counters = Counters()
        outcome = _TaskOutcome(task_id=task_id, emits=[], counters=counters)
        with self.tracer.task_span("map", task=task_id) as span:
            with task_io_scope() as scope:
                report = job.vector_plan.run_map_task(self.fs, split)
                outcome.input_bytes = scope.captured(self.fs.io).bytes_read
            outcome.emits = report.emits
            outcome.input_records = report.input_records
            outcome.output_records = report.output_records
            if report.matched:
                # The row mapper's per-row ctx.counter("query", "matched");
                # guarded so a zero-match task does not create the counter
                # entry the row path never creates.
                counters.inc("query", "matched", report.matched)
            span.add("input_records", outcome.input_records)
            span.add("input_bytes", outcome.input_bytes)
            span.add("output_records", outcome.output_records)
            span.set(VECTOR_ATTR, True)
            span.add(VECTOR_COUNTER_PREFIX + "batches", report.batches)
            if report.fallback_rows:
                span.add(VECTOR_COUNTER_PREFIX + "fallback_rows",
                         report.fallback_rows)
        if self.tracer.enabled:
            outcome.span = span
        return outcome

    def _reduce_task(self, job: Job, task_id: int,
                     bucket: Dict[Any, List[Any]], attempt: int = 0,
                     crash_after: Optional[int] = None) -> _TaskOutcome:
        emits: List[Tuple[Any, Any]] = []
        counters = Counters()
        ctx = TaskContext(task_id, self.fs, counters,
                          lambda k, v, buf=emits: buf.append((k, v)),
                          attempt=attempt)
        outcome = _TaskOutcome(task_id=task_id, emits=emits,
                               counters=counters)
        with self.tracer.task_span("reduce", task=task_id) as span:
            with task_io_scope() as scope:
                # Reduce attempts only ever crash at startup — before
                # ``reduce_setup`` acquires external resources (output
                # writers), so a retried attempt never sees a half-written
                # side effect.
                self._maybe_crash(job, "reduce", task_id, attempt,
                                  crash_after, 0)
                if job.reduce_setup is not None:
                    job.reduce_setup(ctx)
                try:
                    for key in sorted(bucket):
                        values = bucket[key]
                        outcome.input_records += len(values)
                        job.reducer(key, values, ctx)
                finally:
                    if job.reduce_cleanup is not None:
                        job.reduce_cleanup(ctx)
                outcome.output_bytes = scope.captured(self.fs.io).bytes_written
            outcome.output_records = len(emits)
            span.add("input_records", outcome.input_records)
            span.add("output_records", outcome.output_records)
            span.add("output_bytes", outcome.output_bytes)
        if self.tracer.enabled:
            outcome.span = span
        return outcome

    @staticmethod
    def _combine(job: Job, emits: List[Tuple[Any, Any]],
                 counters: Counters) -> List[Tuple[Any, Any]]:
        """Run the combiner over one map task's buffered output."""
        grouped: Dict[Any, List[Any]] = {}
        for key, value in emits:
            grouped.setdefault(key, []).append(value)
        combined: List[Tuple[Any, Any]] = []
        ctx = TaskContext(-1, None, counters,
                          lambda k, v: combined.append((k, v)))
        for key in sorted(grouped):
            job.combiner(key, grouped[key], ctx)
        return combined
