"""The in-process MapReduce job runner.

Tasks run either sequentially (the default) or on a thread pool
(:class:`~repro.mapreduce.cluster.ExecutionConfig` with ``max_workers > 1``),
and the two modes produce **byte-identical** :class:`JobResult`s: every map
and reduce task accumulates its counters and I/O stats task-locally (see
:func:`repro.hdfs.metrics.task_io_scope`), and the engine merges task
outcomes at each phase barrier in deterministic order — split order for map
tasks, partition order for reduce tasks, with reduce keys processed in
sorted order inside each partition.  The differential harness
(``tests/harness/differential.py``) enforces this equivalence for generated
workloads; the *simulated* parallelism of the paper's cluster remains the
cost model's slot/wave arithmetic over the measured counters.
"""

from __future__ import annotations

import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.hdfs.filesystem import HDFS
from repro.hdfs.metrics import task_io_scope
from repro.mapreduce.cluster import ExecutionConfig, SEQUENTIAL
from repro.mapreduce.counters import Counters
from repro.mapreduce.cost import TaskStats
from repro.mapreduce.job import Job, JobResult, TaskContext
from repro.obs.trace import NULL_TRACER, Span, Tracer


def estimate_size(obj: Any) -> int:
    """Cheap serialized-size estimate used for shuffle-byte accounting.

    Models Hadoop's writable encoding: small fixed overhead per value plus
    the payload size; containers add their elements.  Unordered containers
    (dicts, sets) sum their per-entry sizes in sorted order so the result —
    and therefore the shuffle-byte counters merged under the parallel
    engine — is identical for any insertion order or hash seed.
    """
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, (tuple, list)):
        return 4 + sum(estimate_size(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return 4 + sum(sorted(estimate_size(v) for v in obj))
    if isinstance(obj, dict):
        return 4 + sum(sorted(estimate_size(k) + estimate_size(v)
                              for k, v in obj.items()))
    return 16


def stable_hash(key: Any) -> int:
    """Deterministic across processes (unlike ``hash`` on strings), so
    reorganized table layouts are identical between runs."""
    return zlib.crc32(repr(key).encode("utf-8"))


@dataclass
class _TaskOutcome:
    """Everything one task hands back to the barrier merge."""

    task_id: int
    emits: List[Tuple[Any, Any]]
    counters: Counters
    input_records: int = 0
    output_records: int = 0
    input_bytes: int = 0
    output_bytes: int = 0
    #: the task's trace span, attached to the phase span at the barrier
    #: (in task order) so trace shape never depends on thread scheduling.
    span: Optional[Span] = None

    def stats(self, kind: str) -> TaskStats:
        return TaskStats(task_id=self.task_id, kind=kind,
                         input_records=self.input_records,
                         output_records=self.output_records,
                         input_bytes=self.input_bytes,
                         output_bytes=self.output_bytes)


class MapReduceEngine:
    """Runs :class:`~repro.mapreduce.job.Job` objects against an HDFS."""

    def __init__(self, fs: HDFS, execution: Optional[ExecutionConfig] = None,
                 tracer: Optional[Tracer] = None):
        self.fs = fs
        self.execution = execution if execution is not None else SEQUENTIAL
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.jobs_run = 0
        # Concurrent queries (the query service) may call run() from many
        # threads at once; the counter increment must not lose updates.
        self._jobs_run_lock = threading.Lock()

    def run(self, job: Job) -> JobResult:
        job.validate()
        execution = job.execution if job.execution is not None \
            else self.execution
        workers = execution.worker_count()
        with self.tracer.span("mr_job", job=job.name) as job_span:
            result = self._run(job, workers, job_span)
        result.trace_span = job_span if self.tracer.enabled else None
        with self._jobs_run_lock:
            self.jobs_run += 1
        return result

    def _run(self, job: Job, workers: int, job_span: Span) -> JobResult:
        result = JobResult(job_name=job.name)
        stats = result.stats
        counters = result.counters

        splits = job.splits
        if splits is None:
            splits = job.input_format.get_splits(self.fs, job.input_paths)
        stats.map_tasks = len(splits)

        num_partitions = max(1, job.num_reducers)
        partitioner = job.partitioner or stable_hash

        with self.tracer.span("map_phase", tasks=len(splits)) as map_span:
            map_outcomes = self._run_phase(
                [lambda tid=task_id, s=split: self._map_task(job, tid, s)
                 for task_id, split in enumerate(splits)], workers)

            # Barrier: merge map outcomes in split order, so shuffle value
            # lists, counters and stats are identical for any worker count.
            for outcome in map_outcomes:
                if outcome.span is not None:
                    map_span.attach(outcome.span)
                stats.map_input_records += outcome.input_records
                stats.map_input_bytes += outcome.input_bytes
                stats.map_output_records += outcome.output_records
                counters.merge(outcome.counters)
                result.task_stats.append(outcome.stats("map"))
            map_span.add("input_records", stats.map_input_records)
            map_span.add("input_bytes", stats.map_input_bytes)
            map_span.add("output_records", stats.map_output_records)

        shuffle: List[Dict[Any, List[Any]]] = [dict()
                                               for _ in range(num_partitions)]
        map_only_output: List[Tuple[Any, Any]] = []
        if job.reducer is None:
            for outcome in map_outcomes:
                map_only_output.extend(outcome.emits)
            result.output = map_only_output
            counters.set("job", "map_tasks", stats.map_tasks)
            return result

        with self.tracer.span("shuffle",
                              partitions=num_partitions) as shuffle_span:
            for outcome in map_outcomes:
                for key, value in outcome.emits:
                    stats.shuffle_bytes += (estimate_size(key)
                                            + estimate_size(value))
                    bucket = shuffle[partitioner(key) % num_partitions]
                    bucket.setdefault(key, []).append(value)
            shuffle_span.add("shuffle_bytes", stats.shuffle_bytes)
            shuffle_span.add("shuffle_records", stats.map_output_records)

        with self.tracer.span("reduce_phase") as reduce_span:
            reduce_outcomes = self._run_phase(
                [lambda tid=task_id, b=bucket: self._reduce_task(job, tid, b)
                 for task_id, bucket in enumerate(shuffle)
                 if bucket or num_partitions == 1], workers)
            for outcome in reduce_outcomes:
                if outcome.span is not None:
                    reduce_span.attach(outcome.span)
                stats.reduce_tasks += 1
                stats.reduce_input_records += outcome.input_records
                stats.output_bytes += outcome.output_bytes
                counters.merge(outcome.counters)
                result.task_stats.append(outcome.stats("reduce"))
                result.output.extend(outcome.emits)
            reduce_span.set("tasks", stats.reduce_tasks)
            reduce_span.add("input_records", stats.reduce_input_records)
            reduce_span.add("output_bytes", stats.output_bytes)

        counters.set("job", "map_tasks", stats.map_tasks)
        counters.set("job", "reduce_tasks", stats.reduce_tasks)
        return result

    # ----------------------------------------------------------------- tasks
    def _run_phase(self, thunks: List[Callable[[], _TaskOutcome]],
                   workers: int) -> List[_TaskOutcome]:
        """Execute one phase's tasks, returning outcomes in task order."""
        if workers <= 1 or len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        with ThreadPoolExecutor(max_workers=min(workers, len(thunks)),
                                thread_name_prefix="mr-task") as pool:
            futures = [pool.submit(thunk) for thunk in thunks]
            return [future.result() for future in futures]

    def _map_task(self, job: Job, task_id: int, split) -> _TaskOutcome:
        emits: List[Tuple[Any, Any]] = []
        counters = Counters()
        ctx = TaskContext(task_id, self.fs, counters,
                          lambda k, v, buf=emits: buf.append((k, v)))
        ctx.split = split
        outcome = _TaskOutcome(task_id=task_id, emits=emits,
                               counters=counters)
        with self.tracer.task_span("map", task=task_id) as span:
            with task_io_scope() as scope:
                for key, value in job.input_format.read_split(self.fs, split):
                    outcome.input_records += 1
                    job.mapper(key, value, ctx)
                outcome.input_bytes = scope.captured(self.fs.io).bytes_read
            outcome.output_records = len(emits)
            if job.reducer is not None and job.combiner is not None:
                outcome.emits = self._combine(job, emits, counters)
            span.add("input_records", outcome.input_records)
            span.add("input_bytes", outcome.input_bytes)
            span.add("output_records", outcome.output_records)
        if self.tracer.enabled:
            outcome.span = span
        return outcome

    def _reduce_task(self, job: Job, task_id: int,
                     bucket: Dict[Any, List[Any]]) -> _TaskOutcome:
        emits: List[Tuple[Any, Any]] = []
        counters = Counters()
        ctx = TaskContext(task_id, self.fs, counters,
                          lambda k, v, buf=emits: buf.append((k, v)))
        outcome = _TaskOutcome(task_id=task_id, emits=emits,
                               counters=counters)
        with self.tracer.task_span("reduce", task=task_id) as span:
            with task_io_scope() as scope:
                if job.reduce_setup is not None:
                    job.reduce_setup(ctx)
                try:
                    for key in sorted(bucket):
                        values = bucket[key]
                        outcome.input_records += len(values)
                        job.reducer(key, values, ctx)
                finally:
                    if job.reduce_cleanup is not None:
                        job.reduce_cleanup(ctx)
                outcome.output_bytes = scope.captured(self.fs.io).bytes_written
            outcome.output_records = len(emits)
            span.add("input_records", outcome.input_records)
            span.add("output_records", outcome.output_records)
            span.add("output_bytes", outcome.output_bytes)
        if self.tracer.enabled:
            outcome.span = span
        return outcome

    @staticmethod
    def _combine(job: Job, emits: List[Tuple[Any, Any]],
                 counters: Counters) -> List[Tuple[Any, Any]]:
        """Run the combiner over one map task's buffered output."""
        grouped: Dict[Any, List[Any]] = {}
        for key, value in emits:
            grouped.setdefault(key, []).append(value)
        combined: List[Tuple[Any, Any]] = []
        ctx = TaskContext(-1, None, counters,
                          lambda k, v: combined.append((k, v)))
        for key in sorted(grouped):
            job.combiner(key, grouped[key], ctx)
        return combined
