"""The in-process MapReduce job runner.

Execution is sequential and deterministic (tasks in split order, reduce keys
in sorted order) so tests and benchmarks are exactly reproducible; the
*parallel* behaviour of the paper's cluster is recovered afterwards by the
cost model's slot/wave arithmetic over the measured counters.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Tuple

from repro.hdfs.filesystem import HDFS
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import Job, JobResult, TaskContext


def estimate_size(obj: Any) -> int:
    """Cheap serialized-size estimate used for shuffle-byte accounting.

    Models Hadoop's writable encoding: small fixed overhead per value plus
    the payload size; containers add their elements.
    """
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, (tuple, list, set, frozenset)):
        return 4 + sum(estimate_size(v) for v in obj)
    if isinstance(obj, dict):
        return 4 + sum(estimate_size(k) + estimate_size(v)
                       for k, v in obj.items())
    return 16


def stable_hash(key: Any) -> int:
    """Deterministic across processes (unlike ``hash`` on strings), so
    reorganized table layouts are identical between runs."""
    return zlib.crc32(repr(key).encode("utf-8"))


class MapReduceEngine:
    """Runs :class:`~repro.mapreduce.job.Job` objects against an HDFS."""

    def __init__(self, fs: HDFS):
        self.fs = fs
        self.jobs_run = 0

    def run(self, job: Job) -> JobResult:
        job.validate()
        result = JobResult(job_name=job.name)
        stats = result.stats
        counters = result.counters

        splits = job.splits
        if splits is None:
            splits = job.input_format.get_splits(self.fs, job.input_paths)
        stats.map_tasks = len(splits)

        num_partitions = max(1, job.num_reducers)
        partitioner = job.partitioner or stable_hash
        # partition -> key -> list of values
        shuffle: List[Dict[Any, List[Any]]] = [dict()
                                               for _ in range(num_partitions)]
        map_only_output: List[Tuple[Any, Any]] = []

        for task_id, split in enumerate(splits):
            task_emits: List[Tuple[Any, Any]] = []
            ctx = TaskContext(task_id, self.fs, counters,
                              lambda k, v, buf=task_emits: buf.append((k, v)))
            ctx.split = split
            before = self.fs.io.snapshot()
            for key, value in job.input_format.read_split(self.fs, split):
                stats.map_input_records += 1
                job.mapper(key, value, ctx)
            stats.map_input_bytes += self.fs.io.delta(before).bytes_read
            stats.map_output_records += len(task_emits)

            if job.reducer is None:
                map_only_output.extend(task_emits)
                continue
            if job.combiner is not None:
                task_emits = self._combine(job, task_emits, counters)
            for key, value in task_emits:
                stats.shuffle_bytes += estimate_size(key) + estimate_size(value)
                bucket = shuffle[partitioner(key) % num_partitions]
                bucket.setdefault(key, []).append(value)

        if job.reducer is None:
            result.output = map_only_output
            counters.set("job", "map_tasks", stats.map_tasks)
            self.jobs_run += 1
            return result

        before_reduce = self.fs.io.snapshot()
        for task_id, bucket in enumerate(shuffle):
            if not bucket and num_partitions > 1:
                continue
            reduce_emits: List[Tuple[Any, Any]] = []
            ctx = TaskContext(task_id, self.fs, counters,
                              lambda k, v, buf=reduce_emits: buf.append((k, v)))
            stats.reduce_tasks += 1
            if job.reduce_setup is not None:
                job.reduce_setup(ctx)
            try:
                for key in sorted(bucket):
                    values = bucket[key]
                    stats.reduce_input_records += len(values)
                    job.reducer(key, values, ctx)
            finally:
                if job.reduce_cleanup is not None:
                    job.reduce_cleanup(ctx)
            result.output.extend(reduce_emits)
        stats.output_bytes += self.fs.io.delta(before_reduce).bytes_written

        counters.set("job", "map_tasks", stats.map_tasks)
        counters.set("job", "reduce_tasks", stats.reduce_tasks)
        self.jobs_run += 1
        return result

    @staticmethod
    def _combine(job: Job, emits: List[Tuple[Any, Any]],
                 counters: Counters) -> List[Tuple[Any, Any]]:
        """Run the combiner over one map task's buffered output."""
        grouped: Dict[Any, List[Any]] = {}
        for key, value in emits:
            grouped.setdefault(key, []).append(value)
        combined: List[Tuple[Any, Any]] = []
        ctx = TaskContext(-1, None, counters,
                          lambda k, v: combined.append((k, v)))
        for key in sorted(grouped):
            job.combiner(key, grouped[key], ctx)
        return combined
