"""Hadoop-style job counters.

Thread model: a ``Counters`` instance is deliberately lock-free.  Under the
parallel engine each task gets its *own* instance (via its
:class:`~repro.mapreduce.job.TaskContext`), and the engine folds the
per-task instances into the job's counters with :meth:`Counters.merge` at
the phase barrier, in deterministic task order — so ``inc`` never races and
merged values are identical for any worker count.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Counters:
    """Nested ``group -> name -> count`` counters.

    >>> c = Counters()
    >>> c.inc("map", "records", 3)
    >>> c.get("map", "records")
    3
    """

    def __init__(self):
        self._groups: Dict[str, Dict[str, int]] = defaultdict(dict)

    def inc(self, group: str, name: str, amount: int = 1) -> None:
        bucket = self._groups[group]
        bucket[name] = bucket.get(name, 0) + amount

    def get(self, group: str, name: str) -> int:
        return self._groups.get(group, {}).get(name, 0)

    def set(self, group: str, name: str, value: int) -> None:
        self._groups[group][name] = value

    def merge(self, other: "Counters") -> None:
        for group, name, value in other.items():
            self.inc(group, name, value)

    def items(self) -> Iterator[Tuple[str, str, int]]:
        for group, bucket in sorted(self._groups.items()):
            for name, value in sorted(bucket.items()):
                yield group, name, value

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        return {group: dict(bucket)
                for group, bucket in self._groups.items()}

    def __repr__(self) -> str:
        parts = [f"{g}.{n}={v}" for g, n, v in self.items()]
        return f"Counters({', '.join(parts)})"
