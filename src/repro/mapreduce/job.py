"""Job definition and result objects for the MapReduce engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import MapReduceError
from repro.mapreduce.cluster import ExecutionConfig
from repro.mapreduce.counters import Counters
from repro.mapreduce.cost import JobStats, TaskStats
from repro.mapreduce.splits import FileSplit, InputFormat

#: map(key, value, context) -> None (emit via context.emit)
Mapper = Callable[[Any, Any, "TaskContext"], None]
#: reduce(key, values, context) -> None
Reducer = Callable[[Any, List[Any], "TaskContext"], None]


class TaskContext:
    """What a mapper/reducer sees: emit, counters, task identity, scratch.

    ``state`` is a per-task dict for jobs that need task-local resources
    (the DGFIndex builder keeps its per-reducer output writer there, opened
    by the job's ``reduce_setup`` hook).
    """

    def __init__(self, task_id: int, fs, counters: Counters,
                 emit_fn: Callable[[Any, Any], None], attempt: int = 0):
        self.task_id = task_id
        self.fs = fs
        self.counters = counters
        self._emit_fn = emit_fn
        self.state: Dict[str, Any] = {}
        #: 0-based attempt number (> 0 only when fault injection crashed an
        #: earlier attempt and the engine retried).  Informational: task
        #: code must not branch on it, or attempts stop being equivalent.
        self.attempt = attempt

    def emit(self, key: Any, value: Any) -> None:
        self._emit_fn(key, value)

    def counter(self, group: str, name: str, amount: int = 1) -> None:
        self.counters.inc(group, name, amount)


@dataclass
class Job:
    """A MapReduce job specification.

    ``splits`` may be supplied directly (index handlers pre-filter them, the
    paper's temp-file protocol); otherwise they are computed from
    ``input_paths`` by ``input_format.get_splits``.
    """

    name: str
    input_format: InputFormat
    mapper: Mapper
    input_paths: Sequence[str] = ()
    splits: Optional[List[FileSplit]] = None
    combiner: Optional[Reducer] = None
    reducer: Optional[Reducer] = None
    num_reducers: int = 1
    #: optional hooks, called once per reduce task with the TaskContext.
    reduce_setup: Optional[Callable[[TaskContext], None]] = None
    reduce_cleanup: Optional[Callable[[TaskContext], None]] = None
    #: partition function key -> int; default is hash.
    partitioner: Optional[Callable[[Any], int]] = None
    #: per-job override of the engine's execution mode (None = engine's).
    execution: Optional[ExecutionConfig] = None
    #: per-job override of the fault plan's retry budget (None = policy's
    #: ``max_task_attempts``); lets tests pin a job to a single attempt.
    max_task_attempts: Optional[int] = None
    #: optional :class:`repro.vector.plan.VectorSelectPlan`; when set, map
    #: tasks run the columnar path instead of ``mapper`` (which remains the
    #: byte-identical reference and is still used for crash-injected
    #: attempts, whose per-record crash timing the batch path cannot
    #: reproduce).
    vector_plan: Optional[Any] = None

    def validate(self) -> None:
        if self.splits is None and not self.input_paths:
            raise MapReduceError(f"job {self.name!r}: no input")
        if self.num_reducers < 0:
            raise MapReduceError(f"job {self.name!r}: bad num_reducers")
        if self.max_task_attempts is not None and self.max_task_attempts < 1:
            raise MapReduceError(
                f"job {self.name!r}: max_task_attempts must be >= 1")
        if self.reducer is None and (self.reduce_setup or self.reduce_cleanup):
            raise MapReduceError(
                f"job {self.name!r}: reduce hooks without a reducer")


@dataclass
class JobResult:
    """Output records (from reduce emits, or map emits for map-only jobs),
    counters, and the measured stats the cost model consumes.

    ``task_stats`` lists one :class:`~repro.mapreduce.cost.TaskStats` per
    executed task — map tasks in split order, then reduce tasks in
    partition order — identical for any ``ExecutionConfig``, so the cost
    model can read measured per-task counters instead of assuming serial
    execution evenly divided the input.
    """

    job_name: str
    output: List[Tuple[Any, Any]] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    stats: JobStats = field(default_factory=JobStats)
    task_stats: List[TaskStats] = field(default_factory=list)
    #: the engine's ``mr_job`` trace span for this run (None when the
    #: engine has no enabled tracer); the session annotates its phase
    #: children with cost-model seconds after the job completes.
    trace_span: Optional[Any] = None
