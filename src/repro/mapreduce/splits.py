"""Input splits, input formats and record readers.

``InputFormat.get_splits`` mirrors Hadoop's FileInputFormat: each file is cut
at block boundaries into :class:`FileSplit` ranges.  Index handlers hook in
*before* the engine (Hive's temp-file protocol) by shrinking the split list
or by attaching per-split metadata such as DGFIndex slice lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.hdfs.filesystem import HDFS
from repro.storage.rcfile import RCFileReader
from repro.storage.schema import Schema
from repro.storage.textfile import TextFileReader


@dataclass
class FileSplit:
    """A byte range of one file processed by one map task."""

    path: str
    start: int
    length: int
    hosts: Tuple[int, ...] = ()
    #: Free-form per-split metadata; the DGFIndex input format stores the
    #: ordered slice ranges a task must read (paper's <split, slicesInSplit>).
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> int:
        return self.start + self.length

    def __repr__(self) -> str:
        return f"FileSplit({self.path}:{self.start}+{self.length})"


class InputFormat:
    """Interface: split computation plus a record reader per split."""

    def get_splits(self, fs: HDFS, paths: Sequence[str]) -> List[FileSplit]:
        """Default: one split per block-aligned range of each file."""
        splits: List[FileSplit] = []
        for path in paths:
            for file_path in _expand(fs, path):
                splits.extend(self._file_splits(fs, file_path))
        return splits

    def _file_splits(self, fs: HDFS, file_path: str) -> List[FileSplit]:
        status = fs.status(file_path)
        if status.length == 0:
            return []
        splits = []
        offset = 0
        for block in status.blocks:
            splits.append(FileSplit(path=file_path, start=offset,
                                    length=block.length,
                                    hosts=tuple(block.datanodes)))
            offset += block.length
        return splits

    def read_split(self, fs: HDFS, split: FileSplit
                   ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` records of one split."""
        raise NotImplementedError


def _expand(fs: HDFS, path: str) -> List[str]:
    """A path may be a file or a directory of files."""
    status = fs.status(path)
    if status.is_dir:
        return fs.list_files(path)
    return [path]


class TextRowInputFormat(InputFormat):
    """Text files parsed into schema rows; key = line byte offset."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def read_split(self, fs: HDFS, split: FileSplit
                   ) -> Iterator[Tuple[int, Tuple]]:
        with fs.open(split.path) as stream:
            reader = TextFileReader(stream, self.schema)
            yield from reader.iter_rows(split.start, split.end)


class RCFileRowInputFormat(InputFormat):
    """RCFile tables; key = row-group byte offset, with column pruning.

    A split owns the row groups whose header starts inside its range.  Group
    offsets are discovered by a cheap header walk (real RCFile uses sync
    markers for the same purpose).
    """

    def __init__(self, schema: Schema, columns: Optional[Sequence[str]] = None,
                 group_filter=None, row_filter=None):
        self.schema = schema
        self.columns = list(columns) if columns is not None else None
        #: optional ``(path, group_offset) -> bool``, used by indexes to skip
        #: whole row groups inside a split.
        self.group_filter = group_filter
        #: optional ``(path, group_offset, row_index) -> bool`` (Bitmap Index).
        self.row_filter = row_filter

    def read_split(self, fs: HDFS, split: FileSplit
                   ) -> Iterator[Tuple[int, Tuple]]:
        with fs.open(split.path) as stream:
            reader = RCFileReader(stream, self.schema)
            for group_offset, nrows in list(reader.iter_groups(0, None)):
                if not (split.start <= group_offset < split.end):
                    continue
                if (self.group_filter is not None
                        and not self.group_filter(split.path, group_offset)):
                    continue
                row_filter = None
                if self.row_filter is not None:
                    row_filter = (lambda off, r, _p=split.path:
                                  self.row_filter(_p, off, r))
                for row in reader.read_group_rows(group_offset, self.columns,
                                                  row_filter):
                    yield group_offset, row
