"""Cluster configuration: the paper's testbed, expressed as parameters.

The paper runs 29 virtual nodes (1 master + 28 workers), 8 cores and 8 GB
each, Hadoop 1.2.1 with 5 map slots and 3 reduce slots per worker, HDFS
replication 2, 64 MB blocks, HBase 0.94 as the key-value store.  The numbers
below parameterize the cost model (:mod:`repro.mapreduce.cost`); they were
calibrated once so that a full scan of the paper's 1 TB meter table lands
near the paper's reported ~1950 s and are then *held fixed* for every
experiment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.units import MiB


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the (simulated) cluster."""

    num_workers: int = 28
    map_slots_per_worker: int = 5
    reduce_slots_per_worker: int = 3
    #: HDFS block size the *paper* used; measured split counts are rescaled
    #: to this block size before the wave model is applied.
    paper_block_size: int = 64 * MiB
    #: Sequential scan bandwidth available to one task slot (bytes/s).
    per_slot_disk_bandwidth: float = 50e6
    #: Per-record CPU cost of Hive 0.10's interpreted row pipeline (s).
    cpu_seconds_per_record: float = 20e-6
    #: Shuffle: aggregate network bandwidth per worker (bytes/s).
    per_worker_network_bandwidth: float = 100e6
    #: Reduce-side merge + write cost per byte of reduce input (s/byte).
    reduce_seconds_per_byte: float = 1.0 / 80e6
    #: Launch overheads: JVM task start and Hive job submit (query parse,
    #: plan, MR job launch) — the paper's "other time".
    task_startup_seconds: float = 1.5
    job_launch_seconds: float = 15.0
    #: HBase access latencies.
    kv_get_seconds: float = 0.4e-3
    kv_put_seconds: float = 0.6e-3
    kv_scan_rows_per_second: float = 200e3

    @property
    def total_map_slots(self) -> int:
        return self.num_workers * self.map_slots_per_worker

    @property
    def total_reduce_slots(self) -> int:
        return self.num_workers * self.reduce_slots_per_worker


#: The paper's cluster, used by all experiments unless overridden.
PAPER_CLUSTER = ClusterConfig()


@dataclass(frozen=True)
class ExecutionConfig:
    """How the *real* in-process engine schedules tasks.

    Distinct from :class:`ClusterConfig`, which parameterizes the paper's
    *simulated* cluster for the cost model: ``max_workers`` controls how
    many OS threads actually run map and reduce tasks concurrently.

    ``max_workers=1`` (the default) is the fully sequential engine that all
    benchmark numbers were calibrated on; ``0`` means "one worker per CPU
    core".  Every setting produces a byte-identical
    :class:`~repro.mapreduce.job.JobResult` — rows, counters and per-task
    stats — because tasks accumulate state locally and the engine merges
    task results in deterministic split/partition order at each phase
    barrier.  The differential harness (``tests/harness/differential.py``)
    enforces that guarantee.

    ``vectorized=True`` opts map tasks into the columnar batch engine
    (:mod:`repro.vector`): scans decode whole column batches, predicates
    run as NumPy kernels, and additive aggregates fold per batch.  The
    switch is purely a *speed* knob — any expression the vector layer
    cannot compile falls back to the row engine per operator, and the
    vector differential harness (``tests/test_vector_differential.py``)
    proves results, stats and normalized traces stay byte-identical.
    When NumPy is not installed the flag is inert and the row engine
    runs everywhere.

    Layer ownership: ExecutionConfig is a **per-session engine** setting,
    fixed at ``repro.connect()`` time (``execution=...`` or the
    ``vectorized=`` / ``engine_workers=`` shorthands) — never per query.
    Per-query planner knobs live in
    :class:`~repro.hive.session.QueryOptions`; the service pool is sized
    by ``connect(max_workers=..., queue_depth=...)``.  See the knob-
    ownership section of :mod:`repro.api`.
    """

    max_workers: int = 1
    vectorized: bool = False

    def __post_init__(self):
        if self.max_workers < 0:
            raise ValueError(
                f"max_workers must be >= 0 (0 = one per CPU core), "
                f"got {self.max_workers}")

    @property
    def is_parallel(self) -> bool:
        return self.worker_count() > 1

    def worker_count(self) -> int:
        """The resolved number of task-execution threads."""
        if self.max_workers == 0:
            return os.cpu_count() or 1
        return self.max_workers


#: The default: the deterministic single-threaded engine.
SEQUENTIAL = ExecutionConfig(max_workers=1)
