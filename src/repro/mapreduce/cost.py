"""Analytic cost model: measured counters -> paper-scale simulated seconds.

Experiments run on scaled-down data (``data_scale`` = paper records /
generated records) and scaled-down HDFS blocks (4 MiB vs the paper's 64 MB).
The model first rescales measured, data-proportional quantities to paper
scale, then applies a slot/wave execution model:

* map phase: ``waves * task_startup + io_time + cpu_time`` where the I/O and
  CPU terms divide paper-scale bytes/records over the occupied map slots;
* shuffle: paper-scale shuffle bytes over the aggregate network bandwidth;
* reduce phase: bytes over the reduce merge bandwidth plus startup waves;
* key-value store: per-op latencies (gets are issued by the single-threaded
  index handler on the master, as in the paper's implementation);
* a fixed job-launch overhead per MapReduce job ("HiveQL parsing time and
  launching task time" in the paper's figures).

Every experiment reports the *measured* counters alongside the modelled
seconds, so the raw reproduction data is never hidden behind the model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.mapreduce.cluster import ClusterConfig, PAPER_CLUSTER


@dataclass
class JobStats:
    """Measured facts about one executed MapReduce job."""

    map_tasks: int = 0
    reduce_tasks: int = 0
    map_input_records: int = 0
    map_output_records: int = 0
    map_input_bytes: int = 0
    shuffle_bytes: int = 0
    reduce_input_records: int = 0
    output_bytes: int = 0

    def merge(self, other: "JobStats") -> None:
        self.map_tasks += other.map_tasks
        self.reduce_tasks += other.reduce_tasks
        self.map_input_records += other.map_input_records
        self.map_output_records += other.map_output_records
        self.map_input_bytes += other.map_input_bytes
        self.shuffle_bytes += other.shuffle_bytes
        self.reduce_input_records += other.reduce_input_records
        self.output_bytes += other.output_bytes


@dataclass(frozen=True)
class TaskStats:
    """Measured facts about one executed task (map or reduce).

    The engine records one entry per task in
    :attr:`repro.mapreduce.job.JobResult.task_stats`, in deterministic task
    order regardless of how many worker threads executed the job, so the
    cost model can consume measured per-task counters instead of assuming
    the serial-order even split that :class:`JobStats` aggregates imply.
    """

    task_id: int
    kind: str  # "map" | "reduce"
    input_records: int = 0
    output_records: int = 0
    input_bytes: int = 0
    output_bytes: int = 0


@dataclass
class KVStats:
    """Key-value store operations issued while planning/running a query."""

    gets: int = 0
    puts: int = 0
    rows_scanned: int = 0

    def merge(self, other: "KVStats") -> None:
        self.gets += other.gets
        self.puts += other.puts
        self.rows_scanned += other.rows_scanned


@dataclass
class TimeBreakdown:
    """Simulated seconds split the way the paper's stacked bars are.

    ``read_index_and_other`` = KV/index-table access + job launch overhead;
    ``read_data_and_process`` = map/shuffle/reduce work on base data.
    """

    read_index_and_other: float = 0.0
    read_data_and_process: float = 0.0

    @property
    def total(self) -> float:
        return self.read_index_and_other + self.read_data_and_process

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            self.read_index_and_other + other.read_index_and_other,
            self.read_data_and_process + other.read_data_and_process)


class CostModel:
    """Converts measured stats into paper-scale simulated seconds."""

    def __init__(self, cluster: ClusterConfig = PAPER_CLUSTER,
                 data_scale: float = 1.0, sim_block_size: Optional[int] = None):
        if data_scale <= 0:
            raise ValueError("data_scale must be positive")
        self.cluster = cluster
        self.data_scale = float(data_scale)
        self.sim_block_size = sim_block_size

    # ------------------------------------------------------------------ jobs
    def job_phases(self, stats: JobStats,
                   include_launch: bool = True) -> "dict[str, float]":
        """Per-phase simulated seconds of one MapReduce job.

        Returns ``{"launch", "map", "shuffle", "reduce"}``.  This is the
        single source of truth for :meth:`job_seconds` (which folds the
        phases into a :class:`TimeBreakdown` without re-deriving them), so
        per-phase numbers attached to trace spans reconcile bit-for-bit
        with the query's totals.
        """
        c = self.cluster
        scale = self.data_scale
        bytes_in = stats.map_input_bytes * scale
        records_in = stats.map_input_records * scale
        shuffle = stats.shuffle_bytes * scale
        reduce_in = shuffle  # sort-merge reads what was shuffled
        out_bytes = stats.output_bytes * scale

        map_tasks = self._paper_map_tasks(stats, bytes_in)
        map_slots_used = max(1, min(map_tasks, c.total_map_slots))
        map_waves = math.ceil(map_tasks / c.total_map_slots) if map_tasks else 0
        map_time = (map_waves * c.task_startup_seconds
                    + bytes_in / (map_slots_used * c.per_slot_disk_bandwidth)
                    + records_in * c.cpu_seconds_per_record / map_slots_used)

        shuffle_time = shuffle / (c.num_workers
                                  * c.per_worker_network_bandwidth)

        reduce_tasks = stats.reduce_tasks
        reduce_time = 0.0
        if reduce_tasks:
            reduce_slots_used = max(1, min(reduce_tasks,
                                           c.total_reduce_slots))
            reduce_waves = math.ceil(reduce_tasks / c.total_reduce_slots)
            reduce_time = (reduce_waves * c.task_startup_seconds
                           + (reduce_in + out_bytes)
                           * c.reduce_seconds_per_byte / reduce_slots_used)

        launch = c.job_launch_seconds if include_launch else 0.0
        return {"launch": launch, "map": map_time,
                "shuffle": shuffle_time, "reduce": reduce_time}

    def job_seconds(self, stats: JobStats,
                    include_launch: bool = True) -> TimeBreakdown:
        """Simulated duration of one MapReduce job over base data."""
        phases = self.job_phases(stats, include_launch=include_launch)
        return TimeBreakdown(
            read_index_and_other=phases["launch"],
            read_data_and_process=(phases["map"] + phases["shuffle"]
                                   + phases["reduce"]))

    def job_seconds_measured(self, stats: JobStats,
                             tasks: Sequence[TaskStats],
                             include_launch: bool = True) -> TimeBreakdown:
        """Slot/wave model fed by *measured per-task* counters.

        :meth:`job_seconds` assumes every map task processed an equal share
        of the input.  The engine measures each task's exact bytes and
        records, so here the map phase ends when the most-loaded slot
        drains: tasks are assigned to slots round-robin in task order and
        a wave is as slow as its largest straggler.  Shuffle and reduce
        reuse the balanced formulas (the in-memory shuffle does not
        attribute bytes per reduce task).  Falls back to :meth:`job_seconds`
        when no map tasks were recorded (e.g. results from older runs).
        """
        c = self.cluster
        map_tasks = [t for t in tasks if t.kind == "map"]
        if not map_tasks:
            return self.job_seconds(stats, include_launch=include_launch)
        scale = self.data_scale
        slots = max(1, min(len(map_tasks), c.total_map_slots))
        slot_seconds = [0.0] * slots
        for index, task in enumerate(map_tasks):
            slot_seconds[index % slots] += (
                task.input_bytes * scale / c.per_slot_disk_bandwidth
                + task.input_records * scale * c.cpu_seconds_per_record)
        map_waves = math.ceil(len(map_tasks) / c.total_map_slots)
        map_time = map_waves * c.task_startup_seconds + max(slot_seconds)

        shuffle = stats.shuffle_bytes * scale
        shuffle_time = shuffle / (c.num_workers
                                  * c.per_worker_network_bandwidth)
        reduce_time = 0.0
        if stats.reduce_tasks:
            reduce_slots_used = max(1, min(stats.reduce_tasks,
                                           c.total_reduce_slots))
            reduce_waves = math.ceil(stats.reduce_tasks
                                     / c.total_reduce_slots)
            reduce_time = (reduce_waves * c.task_startup_seconds
                           + (shuffle + stats.output_bytes * scale)
                           * c.reduce_seconds_per_byte / reduce_slots_used)

        launch = c.job_launch_seconds if include_launch else 0.0
        return TimeBreakdown(
            read_index_and_other=launch,
            read_data_and_process=map_time + shuffle_time + reduce_time)

    def _paper_map_tasks(self, stats: JobStats, paper_bytes: float) -> int:
        """Rescale the measured split count to the paper's block size.

        With 4 MiB simulated blocks and ``data_scale``-times-smaller data,
        the paper-scale run would have had roughly ``paper_bytes /
        paper_block_size`` tasks, floored at the measured count (tiny inputs
        keep their real split count).
        """
        if stats.map_tasks == 0:
            return 0
        by_bytes = math.ceil(paper_bytes / self.cluster.paper_block_size)
        return max(stats.map_tasks if self.data_scale == 1.0 else 1, by_bytes)

    # ------------------------------------------------------------- kv access
    def kv_seconds(self, stats: KVStats, scale_ops: bool = False
                   ) -> TimeBreakdown:
        """Index-access time.  ``scale_ops`` applies ``data_scale`` for ops
        whose count grows with data size (e.g. index build puts); query-time
        get counts depend on the grid, not the data volume, so they are not
        scaled."""
        c = self.cluster
        factor = self.data_scale if scale_ops else 1.0
        seconds = (stats.gets * c.kv_get_seconds
                   + stats.puts * c.kv_put_seconds
                   + stats.rows_scanned / c.kv_scan_rows_per_second) * factor
        return TimeBreakdown(read_index_and_other=seconds)

    # ----------------------------------------------------------- index scans
    def index_table_scan_seconds(self, index_bytes: int,
                                 index_records: int) -> TimeBreakdown:
        """Hive scans the whole index table (an MR job in real Hive; the
        paper counts it inside "read index and other")."""
        c = self.cluster
        scaled_bytes = index_bytes * self.data_scale
        scaled_records = index_records * self.data_scale
        tasks = max(1, math.ceil(scaled_bytes / c.paper_block_size))
        slots = max(1, min(tasks, c.total_map_slots))
        seconds = (math.ceil(tasks / c.total_map_slots)
                   * c.task_startup_seconds
                   + scaled_bytes / (slots * c.per_slot_disk_bandwidth)
                   + scaled_records * c.cpu_seconds_per_record / slots)
        return TimeBreakdown(read_index_and_other=seconds)

    # -------------------------------------------------------- layout routing
    def layout_route_seconds(self, kv_gets: int, est_records: float,
                             est_bytes: float) -> float:
        """Estimated query cost of scanning one replica layout: the GFU
        probes the grid search would issue, plus a map phase over the
        estimated paper-scale bytes/records the layout's slices hold.
        Used by the replica-fleet router (:mod:`repro.core.dgf.fleet`) to
        pick the cheapest surviving layout; the estimate only ranks
        layouts — the chosen plan's reported time is still measured.
        """
        c = self.cluster
        seconds = kv_gets * c.kv_get_seconds
        scaled_bytes = est_bytes * self.data_scale
        scaled_records = est_records * self.data_scale
        tasks = max(1, math.ceil(scaled_bytes / c.paper_block_size))
        slots = max(1, min(tasks, c.total_map_slots))
        seconds += (math.ceil(tasks / c.total_map_slots)
                    * c.task_startup_seconds
                    + scaled_bytes / (slots * c.per_slot_disk_bandwidth)
                    + scaled_records * c.cpu_seconds_per_record / slots)
        return seconds

    # --------------------------------------------------------------- what-if
    def whatif_seconds(self, kv_gets: float, est_records: float,
                       est_bytes: float) -> float:
        """Hypothetical-layout pricing: the cost a query *would* pay on a
        grid that has never been built.

        Deliberately the same formula as :meth:`layout_route_seconds` —
        the advisor's what-if evaluator (:mod:`repro.core.dgf.whatif`)
        must price candidate grids with the exact model the replica-fleet
        router will later use to choose between them, otherwise the
        advisor could recommend a layout the router never picks.  The
        only difference is that the caller *estimates* probes/records/
        bytes from a candidate grid's geometry instead of measuring them
        against stored per-layout statistics.
        """
        return self.layout_route_seconds(kv_gets, est_records, est_bytes)

    # ------------------------------------------------------- pyramid probes
    def pyramid_probe_count(self, extents: Sequence[int], fanout: int,
                            levels: int) -> int:
        """KV probes the aggregation pyramid pays for an inner region of
        ``extents[i]`` cells per dimension (vs ``prod(extents)`` flat
        header gets).

        Runs the planner's actual greedy decomposition
        (:func:`repro.pyramid.decompose.cover_box`) on a worst-case
        *misaligned* box (origin 1, not 0): an aligned box would cover
        with fewer, larger nodes, and the router/advisor must never
        under-price a layout.  Probe counts depend on grid geometry, not
        data volume, so ``data_scale`` does not apply.
        """
        # Imported here: repro.pyramid imports the DGF stack, which
        # imports this module.
        from repro.pyramid.decompose import cover_box
        lo = tuple(1 for _ in extents)
        hi = tuple(max(1, int(e)) for e in extents)
        nodes, leaves = cover_box(lo, hi, frozenset(), fanout, levels)
        return len(nodes) + len(leaves)

    # ------------------------------------------------------------ raw writes
    def sequential_write_seconds(self, nbytes: int,
                                 parallel_streams: int = 1) -> float:
        """Plain HDFS append time (used by the Fig. 3 write experiment)."""
        c = self.cluster
        streams = max(1, parallel_streams)
        return (nbytes * self.data_scale
                / (streams * c.per_slot_disk_bandwidth))
