"""A deterministic in-process MapReduce engine with Hadoop-like semantics.

The engine reproduces the mechanics the paper's measurements hinge on:

* input splits derived from file blocks (``InputFormat.get_splits``),
* per-split map tasks with record readers, combiners, hash partitioning,
  sort-merge reduce,
* counters (records/bytes/tasks) feeding a calibrated cost model that
  converts a scaled-down run into paper-scale simulated seconds.
"""

from repro.mapreduce.counters import Counters
from repro.mapreduce.splits import (
    FileSplit,
    InputFormat,
    TextRowInputFormat,
    RCFileRowInputFormat,
)
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.cost import CostModel, TimeBreakdown
from repro.mapreduce.job import Job, JobResult
from repro.mapreduce.engine import MapReduceEngine

__all__ = [
    "Counters",
    "FileSplit",
    "InputFormat",
    "TextRowInputFormat",
    "RCFileRowInputFormat",
    "ClusterConfig",
    "CostModel",
    "TimeBreakdown",
    "Job",
    "JobResult",
    "MapReduceEngine",
]
