"""Simulated HDFS: NameNode namespace, DataNode block storage, byte-accurate
I/O accounting.

The simulator reproduces the properties of HDFS that the paper's results
depend on:

* files are write-once append-only sequences of fixed-size blocks,
* reads are byte-addressed (``pread``) and accounted per DataNode,
* the NameNode keeps all namespace metadata in memory (150 bytes per
  directory/file/block object, the figure the paper cites for the partition
  explosion argument),
* input splits are derived from block boundaries.
"""

from repro.hdfs.metrics import IOStats
from repro.hdfs.namenode import NameNode, INode
from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HDFS, FileStatus, HDFSWriter, HDFSReader
from repro.hdfs.layout import LayoutDescriptor, PRIMARY_LAYOUT

__all__ = [
    "IOStats",
    "NameNode",
    "INode",
    "DataNode",
    "HDFS",
    "FileStatus",
    "HDFSWriter",
    "HDFSReader",
    "LayoutDescriptor",
    "PRIMARY_LAYOUT",
]
