"""DataNode: holds block replica bytes and accounts its own I/O."""

from __future__ import annotations

from typing import Dict

from repro.errors import DataNodeUnavailable, HDFSError
from repro.hdfs.metrics import IOStats


class DataNode:
    """One worker's disk.  Stores block replicas as immutable ``bytes``.

    A node may be marked dead (:meth:`mark_dead`) by the fault subsystem:
    its replicas stay on disk (the process is gone, not the platters) but
    every read/store raises :class:`~repro.errors.DataNodeUnavailable`
    until :meth:`revive` — the filesystem's replica failover handles the
    read path.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._blocks: Dict[int, bytes] = {}
        self.io = IOStats()
        self.alive = True

    def mark_dead(self) -> None:
        self.alive = False

    def revive(self) -> None:
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            raise DataNodeUnavailable(
                f"datanode {self.node_id} is marked dead")

    def store(self, block_id: int, data: bytes) -> None:
        self._check_alive()
        self._blocks[block_id] = bytes(data)
        self.io.record_write(len(data))

    def read(self, block_id: int, offset: int, length: int,
             seek: bool = False) -> bytes:
        self._check_alive()
        try:
            data = self._blocks[block_id]
        except KeyError:
            raise HDFSError(
                f"datanode {self.node_id} has no replica of block {block_id}")
        chunk = data[offset:offset + length]
        self.io.record_read(len(chunk), seek=seek)
        return chunk

    def drop(self, block_id: int) -> None:
        self._blocks.pop(block_id, None)

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    @property
    def used_bytes(self) -> int:
        return sum(len(b) for b in self._blocks.values())
