"""I/O accounting shared by the filesystem, MapReduce engine and cost model.

Thread model: :class:`IOStats` instances are plain integer accumulators with
no lock on the hot path.  Concurrent task execution (the parallel MapReduce
engine) is made safe by :func:`task_io_scope`: inside a scope, every
``record_read``/``record_write`` issued by the *current thread* lands in a
private per-instance buffer, and the buffers are folded into the real
instances exactly once, at task completion, under a short module lock.  A
task therefore observes its own exact I/O delta (``scope.captured``) and the
shared totals stay race-free without serializing reads.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

#: guards the (rare) buffer -> shared-instance merge at task completion.
_MERGE_LOCK = threading.Lock()
#: per-thread active capture scope (None outside any task).
_ACTIVE = threading.local()


@dataclass
class IOStats:
    """Running totals of I/O operations.

    Instances form a tree: each :class:`~repro.hdfs.datanode.DataNode` owns
    one, and the filesystem owns a global one; updates go to both.  The cost
    model reads the global instance after a job to convert byte counts into
    simulated seconds.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    read_ops: int = 0
    write_ops: int = 0
    seeks: int = 0

    def record_read(self, nbytes: int, seek: bool = False) -> None:
        target = _sink_for(self)
        target.bytes_read += int(nbytes)
        target.read_ops += 1
        if seek:
            target.seeks += 1

    def record_write(self, nbytes: int) -> None:
        target = _sink_for(self)
        target.bytes_written += int(nbytes)
        target.write_ops += 1

    def snapshot(self) -> "IOStats":
        """Return a copy of the current counters.

        Inside a :func:`task_io_scope`, this reads the *shared* totals; the
        calling task's still-buffered updates are excluded until the scope
        exits (the engine reads per-task deltas via ``scope.captured``).
        """
        return IOStats(self.bytes_read, self.bytes_written,
                       self.read_ops, self.write_ops, self.seeks)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` (an older snapshot)."""
        return IOStats(
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
            self.read_ops - earlier.read_ops,
            self.write_ops - earlier.write_ops,
            self.seeks - earlier.seeks,
        )

    def merge(self, other: "IOStats") -> None:
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.read_ops += other.read_ops
        self.write_ops += other.write_ops
        self.seeks += other.seeks

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0
        self.seeks = 0


class TaskIOScope:
    """Collects one thread's IOStats updates into per-instance buffers."""

    def __init__(self):
        # id(stats) -> (stats, buffer); holding the stats object keeps it
        # alive so the id cannot be recycled while the scope runs.
        self._buffers: Dict[int, Tuple[IOStats, IOStats]] = {}

    def _buffer(self, stats: IOStats) -> IOStats:
        entry = self._buffers.get(id(stats))
        if entry is None:
            entry = (stats, IOStats())
            self._buffers[id(stats)] = entry
        return entry[1]

    def captured(self, stats: IOStats) -> IOStats:
        """This task's accumulated updates against ``stats`` (a copy)."""
        entry = self._buffers.get(id(stats))
        if entry is None:
            return IOStats()
        return entry[1].snapshot()

    def _flush(self, parent: Optional["TaskIOScope"]) -> None:
        if parent is not None:
            for stats, buffer in self._buffers.values():
                parent._buffer(stats).merge(buffer)
            return
        with _MERGE_LOCK:
            for stats, buffer in self._buffers.values():
                stats.merge(buffer)


@contextmanager
def task_io_scope() -> Iterator[TaskIOScope]:
    """Capture the current thread's IOStats updates until the scope exits.

    The merge into the shared instances happens once per scope (per task),
    so concurrent tasks never race on the bare ``+=`` hot path.  Scopes
    nest: an inner scope flushes into its parent's buffers.
    """
    scope = TaskIOScope()
    parent = getattr(_ACTIVE, "scope", None)
    _ACTIVE.scope = scope
    try:
        yield scope
    finally:
        _ACTIVE.scope = parent
        scope._flush(parent)


def _sink_for(stats: IOStats) -> IOStats:
    scope = getattr(_ACTIVE, "scope", None)
    if scope is None:
        return stats
    return scope._buffer(stats)
