"""I/O accounting shared by the filesystem, MapReduce engine and cost model."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Running totals of I/O operations.

    Instances form a tree: each :class:`~repro.hdfs.datanode.DataNode` owns
    one, and the filesystem owns a global one; updates go to both.  The cost
    model reads the global instance after a job to convert byte counts into
    simulated seconds.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    read_ops: int = 0
    write_ops: int = 0
    seeks: int = 0

    def record_read(self, nbytes: int, seek: bool = False) -> None:
        self.bytes_read += int(nbytes)
        self.read_ops += 1
        if seek:
            self.seeks += 1

    def record_write(self, nbytes: int) -> None:
        self.bytes_written += int(nbytes)
        self.write_ops += 1

    def snapshot(self) -> "IOStats":
        """Return a copy of the current counters."""
        return IOStats(self.bytes_read, self.bytes_written,
                       self.read_ops, self.write_ops, self.seeks)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` (an older snapshot)."""
        return IOStats(
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
            self.read_ops - earlier.read_ops,
            self.write_ops - earlier.write_ops,
            self.seeks - earlier.seeks,
        )

    def merge(self, other: "IOStats") -> None:
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.read_ops += other.read_ops
        self.write_ops += other.write_ops
        self.seeks += other.seeks

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0
        self.seeks = 0
