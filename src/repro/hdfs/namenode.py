"""NameNode: the namespace tree and block metadata of the simulated HDFS.

The NameNode stores directories, files and the block list of every file.  As
in real HDFS all of this metadata lives in the (Name)node's memory; the paper
uses the rule of thumb of 150 bytes per namespace object to argue that
multi-dimensional Hive partitioning overloads the NameNode.  We model that
rule exactly so the partition-explosion experiment is quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import (
    FileAlreadyExists,
    FileNotFoundInHDFS,
    IsADirectory,
    NotADirectory,
)

#: Memory charged per directory, file, or block object (bytes).  The paper
#: cites this figure from the Cloudera small-files article.
METADATA_BYTES_PER_OBJECT = 150


@dataclass
class BlockInfo:
    """Metadata of one block: its id, length, and replica locations."""

    block_id: int
    length: int
    datanodes: List[int] = field(default_factory=list)


@dataclass
class INode:
    """A namespace entry: directory or file.

    ``pinned`` restricts every block of a file to a fixed datanode set
    (HAIL-style layout replicas — see :mod:`repro.hdfs.layout`); ``None``
    means normal replicated placement across all live nodes.
    """

    name: str
    is_dir: bool
    children: Dict[str, "INode"] = field(default_factory=dict)
    blocks: List[BlockInfo] = field(default_factory=list)
    pinned: Optional[tuple] = None

    @property
    def length(self) -> int:
        """Total byte length of a file (0 for directories)."""
        return sum(b.length for b in self.blocks)


def _normalize(path: str) -> List[str]:
    if not path.startswith("/"):
        raise FileNotFoundInHDFS(f"paths must be absolute, got {path!r}")
    return [part for part in path.split("/") if part]


class NameNode:
    """In-memory namespace tree plus block allocation."""

    def __init__(self):
        self._root = INode(name="/", is_dir=True)
        self._next_block_id = 0
        self._num_dirs = 1
        self._num_files = 0
        self._num_blocks = 0
        #: layout registry: normalized root directory -> LayoutDescriptor.
        #: Namespace metadata like everything else the NameNode holds —
        #: one descriptor per physical organization of a table's replicas.
        self._layouts: Dict[str, "object"] = {}

    # ------------------------------------------------------------------ paths
    def _lookup(self, path: str) -> Optional[INode]:
        node = self._root
        for part in _normalize(path):
            if not node.is_dir:
                raise NotADirectory(f"{part!r} under non-directory in {path!r}")
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def exists(self, path: str) -> bool:
        return self._lookup(path) is not None

    def get(self, path: str) -> INode:
        node = self._lookup(path)
        if node is None:
            raise FileNotFoundInHDFS(path)
        return node

    def mkdirs(self, path: str) -> INode:
        """Create a directory and any missing parents (like ``mkdir -p``)."""
        node = self._root
        for part in _normalize(path):
            child = node.children.get(part)
            if child is None:
                child = INode(name=part, is_dir=True)
                node.children[part] = child
                self._num_dirs += 1
            elif not child.is_dir:
                raise NotADirectory(f"{path!r}: {part!r} is a file")
            node = child
        return node

    def create_file(self, path: str, overwrite: bool = False) -> INode:
        parts = _normalize(path)
        if not parts:
            raise IsADirectory("/")
        parent = self.mkdirs("/" + "/".join(parts[:-1])) if parts[:-1] \
            else self._root
        name = parts[-1]
        existing = parent.children.get(name)
        if existing is not None:
            if existing.is_dir:
                raise IsADirectory(path)
            if not overwrite:
                raise FileAlreadyExists(path)
            self._num_blocks -= len(existing.blocks)
            self._num_files -= 1
        node = INode(name=name, is_dir=False)
        parent.children[name] = node
        self._num_files += 1
        return node

    def delete(self, path: str, recursive: bool = False) -> List[BlockInfo]:
        """Remove ``path``; return the blocks freed so DataNodes can drop them."""
        parts = _normalize(path)
        if not parts:
            raise IsADirectory("cannot delete the root directory")
        parent = self.get("/" + "/".join(parts[:-1])) if parts[:-1] \
            else self._root
        node = parent.children.get(parts[-1])
        if node is None:
            raise FileNotFoundInHDFS(path)
        if node.is_dir and node.children and not recursive:
            raise NotADirectory(f"{path!r} is a non-empty directory")
        freed: List[BlockInfo] = []
        self._collect_freed(node, freed)
        del parent.children[parts[-1]]
        return freed

    def _collect_freed(self, node: INode, freed: List[BlockInfo]) -> None:
        if node.is_dir:
            self._num_dirs -= 1
            for child in list(node.children.values()):
                self._collect_freed(child, freed)
        else:
            self._num_files -= 1
            self._num_blocks -= len(node.blocks)
            freed.extend(node.blocks)

    def list_dir(self, path: str) -> List[str]:
        node = self.get(path)
        if not node.is_dir:
            raise NotADirectory(path)
        return sorted(node.children)

    def walk_files(self, path: str) -> Iterator[str]:
        """Yield full paths of all files under ``path`` (depth-first, sorted)."""
        node = self.get(path)
        base = "/" + "/".join(_normalize(path))
        if base == "/":
            base = ""
        if not node.is_dir:
            yield base or "/"
            return
        for name in sorted(node.children):
            child = node.children[name]
            child_path = f"{base}/{name}"
            if child.is_dir:
                yield from self.walk_files(child_path)
            else:
                yield child_path

    # ---------------------------------------------------------------- layouts
    def register_layout(self, descriptor) -> None:
        """Register a :class:`~repro.hdfs.layout.LayoutDescriptor` under
        its root directory; files created below that root inherit the
        descriptor's datanode pin set."""
        root = "/" + "/".join(_normalize(descriptor.root))
        self._layouts[root] = descriptor

    def unregister_layout(self, root: str) -> None:
        self._layouts.pop("/" + "/".join(_normalize(root)), None)

    def layout_of(self, path: str) -> Optional[object]:
        """The layout governing ``path`` (longest registered root that is
        a prefix of it), or ``None`` for normally-placed files."""
        normalized = "/" + "/".join(_normalize(path))
        best = None
        for root, descriptor in self._layouts.items():
            if normalized == root or normalized.startswith(root + "/"):
                if best is None or len(root) > len(best[0]):
                    best = (root, descriptor)
        return best[1] if best else None

    def layouts(self) -> List[object]:
        """Every registered descriptor, sorted by layout name."""
        return sorted(self._layouts.values(), key=lambda d: d.name)

    # ----------------------------------------------------------------- blocks
    def allocate_block(self, file_node: INode, length: int,
                       datanodes: List[int]) -> BlockInfo:
        block = BlockInfo(block_id=self._next_block_id, length=length,
                          datanodes=list(datanodes))
        self._next_block_id += 1
        file_node.blocks.append(block)
        self._num_blocks += 1
        return block

    def iter_blocks(self) -> Iterator[BlockInfo]:
        """Every block in the namespace (file walk order)."""
        for path in self.walk_files("/"):
            yield from self.get(path).blocks

    # ----------------------------------------------------------------- memory
    @property
    def num_dirs(self) -> int:
        return self._num_dirs

    @property
    def num_files(self) -> int:
        return self._num_files

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    def metadata_memory_bytes(self) -> int:
        """NameNode heap charged for namespace metadata (paper's 150 B rule)."""
        objects = self._num_dirs + self._num_files + self._num_blocks
        return objects * METADATA_BYTES_PER_OBJECT
