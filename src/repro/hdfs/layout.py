"""Per-replica physical layouts (HAIL-style aggressive replication).

Classic HDFS spends its replication factor on R byte-identical copies of
every block: R-1 of them only ever matter for failover.  *Only Aggressive
Elephants are Fast Elephants* (HAIL) observed that each replica may just
as well hold a **different physical organization** of the same logical
data — a different sort order, a different record format — turning
replication into a raw-speed multiplier instead of pure insurance.

Here a :class:`LayoutDescriptor` names one such organization: the
directory that holds its files (``root``), the storage format its files
are written in (``stored_as``), the datanodes its blocks are pinned to
(``datanodes`` — empty means unpinned, i.e. normal replicated
placement), and the DGF grid overrides that distinguish it from the
primary index (``grid`` granularity specs and the reducer ``placement``
strategy).  The NameNode keeps a registry of descriptors keyed by root
directory; at file-create time the filesystem stamps the matching pin
set onto the INode so every block of a layout's files lands only on the
layout's datanodes.  Killing a pinned datanode therefore makes the whole
layout unreadable — exactly the failure the planner's layout-aware
routing (:mod:`repro.core.dgf.fleet`) must survive by re-costing the
query against the surviving layouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: descriptor name reserved for the table's primary (unpinned) organization.
PRIMARY_LAYOUT = "primary"


@dataclass(frozen=True)
class LayoutDescriptor:
    """One replica's physical organization.

    ``grid`` holds the per-dimension granularity overrides as sorted
    ``(column, spec)`` pairs (``spec`` is the usual DGF
    ``'<origin>_<interval>'`` string); hashable so descriptors can live
    in frozen fault plans and be compared structurally.
    """

    name: str
    root: str
    stored_as: str = "TEXTFILE"
    datanodes: Tuple[int, ...] = ()
    grid: Tuple[Tuple[str, str], ...] = ()
    placement: str = "hash"

    @property
    def pinned(self) -> bool:
        """Whether this layout's blocks live only on specific datanodes."""
        return bool(self.datanodes)

    def grid_properties(self) -> Dict[str, str]:
        """The granularity overrides as a plain dict."""
        return dict(self.grid)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for the metastore's ``index.state`` registry."""
        return {"name": self.name, "root": self.root,
                "stored_as": self.stored_as,
                "datanodes": list(self.datanodes),
                "grid": [list(pair) for pair in self.grid],
                "placement": self.placement}

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "LayoutDescriptor":
        return cls(name=doc["name"], root=doc["root"],
                   stored_as=doc.get("stored_as", "TEXTFILE"),
                   datanodes=tuple(doc.get("datanodes", ())),
                   grid=tuple(tuple(pair) for pair in doc.get("grid", ())),
                   placement=doc.get("placement", "hash"))

    @classmethod
    def make(cls, name: str, root: str, *, stored_as: str = "TEXTFILE",
             datanodes=(), grid=None, placement: str = "hash"
             ) -> "LayoutDescriptor":
        """Build a descriptor from friendly types (dict grid, any
        iterable of datanode ids)."""
        pairs = tuple(sorted((grid or {}).items()))
        return cls(name=name, root=root, stored_as=stored_as,
                   datanodes=tuple(datanodes), grid=pairs,
                   placement=placement)
