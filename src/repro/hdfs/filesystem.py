"""The HDFS facade: create/open/list/delete plus writer and reader streams.

Blocks default to 4 MiB — a documented 1:16 scale-down of the paper's 64 MB
HDFS blocks, so that the scaled-down datasets still produce multiple input
splits per file.  Replication defaults to 2, the paper's setting.
"""

from __future__ import annotations

import threading
import warnings
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.units import MiB
from repro.errors import (DataNodeUnavailable, FileNotFoundInHDFS, HDFSError,
                          IsADirectory)
from repro.hdfs.datanode import DataNode
from repro.hdfs.metrics import IOStats
from repro.hdfs.namenode import BlockInfo, INode, NameNode

DEFAULT_BLOCK_SIZE = 4 * MiB
DEFAULT_REPLICATION = 2


class ReplicationClampWarning(UserWarning):
    """A requested replication factor exceeded the datanode count and was
    clamped (HDFS cannot place two replicas of one block on one node)."""


_clamp_warned = False


def _warn_clamp_once(requested: int, effective: int,
                     num_datanodes: int) -> None:
    """Warn the first time a replication factor is clamped (per process;
    every clamp is still recorded on the instance as
    ``replication_requested`` vs. ``replication``)."""
    global _clamp_warned
    if _clamp_warned:
        return
    _clamp_warned = True
    warnings.warn(
        f"requested replication {requested} exceeds {num_datanodes} "
        f"datanode(s); clamped to {effective}",
        ReplicationClampWarning, stacklevel=3)


@dataclass
class FileStatus:
    """Result of :meth:`HDFS.status`: path, length and block layout."""

    path: str
    length: int
    is_dir: bool
    block_size: int
    blocks: List[BlockInfo]


class HDFSWriter:
    """Append-only output stream; flushes full blocks to DataNodes."""

    def __init__(self, fs: "HDFS", node: INode, path: str):
        self._fs = fs
        self._node = node
        self.path = path
        self._buffer = bytearray()
        self._closed = False
        self._written = 0

    @property
    def pos(self) -> int:
        """Current byte offset in the file (bytes written so far)."""
        return self._written

    def write(self, data: bytes) -> int:
        if self._closed:
            raise HDFSError(f"write to closed file {self.path!r}")
        self._buffer.extend(data)
        self._written += len(data)
        block_size = self._fs.block_size
        while len(self._buffer) >= block_size:
            self._fs._flush_block(self._node, bytes(self._buffer[:block_size]))
            del self._buffer[:block_size]
        return len(data)

    def close(self) -> None:
        if self._closed:
            return
        if self._buffer:
            self._fs._flush_block(self._node, bytes(self._buffer))
            self._buffer.clear()
        self._closed = True

    def __enter__(self) -> "HDFSWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class HDFSReader:
    """Byte-addressed read stream over a file's blocks."""

    def __init__(self, fs: "HDFS", node: INode, path: str):
        self._fs = fs
        self._node = node
        self.path = path
        self._pos = 0
        self._last_end = 0  # used to detect seeks for accounting

    @property
    def length(self) -> int:
        return self._node.length

    def seek(self, offset: int) -> None:
        if offset < 0:
            raise HDFSError(f"negative seek offset {offset}")
        self._pos = offset

    def tell(self) -> int:
        return self._pos

    def read(self, length: int = -1) -> bytes:
        if length < 0:
            length = self.length - self._pos
        data = self.pread(self._pos, length)
        self._pos += len(data)
        return data

    def pread(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` without moving the cursor."""
        if length <= 0 or offset >= self._node.length:
            return b""
        is_seek = offset != self._last_end
        out = bytearray()
        block_start = 0
        remaining = min(length, self._node.length - offset)
        for block in self._node.blocks:
            block_end = block_start + block.length
            if block_end > offset and remaining > 0:
                local_off = max(0, offset - block_start)
                take = min(block.length - local_off, remaining)
                out.extend(self._fs._read_block(block, local_off, take,
                                                seek=is_seek))
                is_seek = False
                remaining -= take
                offset += take
            block_start = block_end
            if remaining <= 0:
                break
        self._last_end = offset
        return bytes(out)

    def __enter__(self) -> "HDFSReader":
        return self

    def __exit__(self, *exc) -> None:
        pass


class HDFS:
    """The simulated distributed filesystem.

    Namespace mutations and block flushes are serialized by a lock so
    concurrent tasks of the parallel MapReduce engine can create and write
    distinct files safely; reads stay lock-free (block bytes are immutable
    once flushed, and read accounting is task-local — see
    :func:`repro.hdfs.metrics.task_io_scope`).
    """

    def __init__(self, num_datanodes: int = 4,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 replication: int = DEFAULT_REPLICATION):
        if num_datanodes < 1:
            raise HDFSError("need at least one datanode")
        self.block_size = int(block_size)
        #: the factor the caller asked for, before any clamping.
        self.replication_requested = int(replication)
        self.replication = min(self.replication_requested, num_datanodes)
        if self.replication < self.replication_requested:
            _warn_clamp_once(self.replication_requested, self.replication,
                             num_datanodes)
        self.namenode = NameNode()
        self.datanodes = [DataNode(i) for i in range(num_datanodes)]
        self.io = IOStats()
        #: optional :class:`repro.obs.trace.Tracer`; when set, each block
        #: read/write also lands as ``hdfs.*`` counters on the calling
        #: thread's active trace span (task spans under the parallel
        #: engine, so per-op trace accounting stays race-free).
        self.tracer = None
        #: optional :class:`repro.faults.FaultInjector`; records datanode
        #: deaths and replica failovers when set.
        self.faults = None
        self._mutate_lock = threading.RLock()

    # ------------------------------------------------------------- namespace
    def mkdirs(self, path: str) -> None:
        with self._mutate_lock:
            self.namenode.mkdirs(path)

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def list_dir(self, path: str) -> List[str]:
        return self.namenode.list_dir(path)

    def list_files(self, path: str) -> List[str]:
        """All file paths under ``path``, recursively, in sorted order."""
        return list(self.namenode.walk_files(path))

    def delete(self, path: str, recursive: bool = False) -> None:
        with self._mutate_lock:
            freed = self.namenode.delete(path, recursive=recursive)
            for block in freed:
                for node_id in block.datanodes:
                    self.datanodes[node_id].drop(block.block_id)

    def status(self, path: str) -> FileStatus:
        node = self.namenode.get(path)
        return FileStatus(path=path, length=node.length, is_dir=node.is_dir,
                          block_size=self.block_size,
                          blocks=list(node.blocks))

    def file_length(self, path: str) -> int:
        return self.namenode.get(path).length

    def total_size(self, path: str) -> int:
        """Total bytes of all files under ``path``."""
        return sum(self.file_length(p) for p in self.list_files(path))

    # ----------------------------------------------------------------- files
    def create(self, path: str, overwrite: bool = False) -> HDFSWriter:
        with self._mutate_lock:
            node = self.namenode.create_file(path, overwrite=overwrite)
            layout = self.namenode.layout_of(path)
            if layout is not None and layout.pinned:
                node.pinned = tuple(layout.datanodes)
        return HDFSWriter(self, node, path)

    def open(self, path: str) -> HDFSReader:
        node = self.namenode.get(path)
        if node.is_dir:
            raise IsADirectory(path)
        return HDFSReader(self, node, path)

    def write_bytes(self, path: str, data: bytes,
                    overwrite: bool = False) -> None:
        with self.create(path, overwrite=overwrite) as writer:
            writer.write(data)

    def read_bytes(self, path: str) -> bytes:
        with self.open(path) as reader:
            return reader.read()

    # ------------------------------------------------------------- datanodes
    def kill_datanode(self, node_id: int) -> None:
        """Mark one datanode dead (fault injection).  Its replicas become
        unreadable until :meth:`revive_datanode`; reads fail over to the
        surviving replicas, writes avoid the node."""
        self.datanodes[node_id].mark_dead()
        if self.faults is not None:
            self.faults.datanode_killed(node_id)

    def revive_datanode(self, node_id: int) -> None:
        self.datanodes[node_id].revive()

    def live_datanodes(self) -> List[int]:
        return [d.node_id for d in self.datanodes if d.alive]

    def replication_report(self) -> Dict[str, int]:
        """Requested vs. effective replication plus current block health.

        ``under_replicated`` counts blocks with fewer live replicas than
        the effective factor; ``unavailable`` counts blocks with none.
        """
        under = unavailable = total = 0
        for block in self.namenode.iter_blocks():
            total += 1
            live = sum(1 for node_id in block.datanodes
                       if self.datanodes[node_id].alive)
            if live == 0:
                unavailable += 1
            if live < self.replication:
                under += 1
        return {"requested": self.replication_requested,
                "effective": self.replication,
                "blocks": total,
                "under_replicated": under,
                "unavailable": unavailable}

    # --------------------------------------------------------------- layouts
    def register_layout(self, descriptor) -> None:
        """Register a :class:`~repro.hdfs.layout.LayoutDescriptor`.  Files
        created under its root are pinned to its datanodes; effective
        replication there is the pin-set size (never warned about — the
        clamp is the point of pinning, not an accident)."""
        for node_id in descriptor.datanodes:
            if not 0 <= node_id < len(self.datanodes):
                raise HDFSError(
                    f"layout {descriptor.name!r} pins unknown datanode "
                    f"{node_id} (cluster has {len(self.datanodes)})")
        with self._mutate_lock:
            self.namenode.register_layout(descriptor)

    def unregister_layout(self, root: str) -> None:
        with self._mutate_lock:
            self.namenode.unregister_layout(root)

    def layout_of(self, path: str):
        return self.namenode.layout_of(path)

    def layouts(self) -> List:
        return self.namenode.layouts()

    def layout_alive(self, name: str) -> bool:
        """Whether every datanode a layout is pinned to is alive (an
        unpinned or unknown layout is trivially alive — its blocks are
        replicated normally and fail over replica-by-replica)."""
        for descriptor in self.namenode.layouts():
            if descriptor.name == name:
                return all(self.datanodes[i].alive
                           for i in descriptor.datanodes)
        return True

    def layout_report(self) -> List[Dict[str, object]]:
        """One row per registered layout: root, format, pins, liveness."""
        return [{"name": d.name, "root": d.root, "stored_as": d.stored_as,
                 "datanodes": list(d.datanodes),
                 "alive": self.layout_alive(d.name)}
                for d in self.namenode.layouts()]

    # ---------------------------------------------------------------- blocks
    def _pick_datanodes(self, node: INode) -> List[int]:
        # A pinned file (a layout replica) places blocks only on its pin
        # set: the layout's bytes deliberately have no copies elsewhere,
        # so a dead pinned node means the layout is down, not degraded.
        if node.pinned:
            live = [i for i in node.pinned if self.datanodes[i].alive]
            if not live:
                raise DataNodeUnavailable(
                    f"layout datanodes {list(node.pinned)} for "
                    f"{node.name!r} are all dead")
            start = (zlib.crc32(node.name.encode())
                     + len(node.blocks)) % len(live)
            rotated = live[start:] + live[:start]
            return rotated[:min(self.replication, len(rotated))]
        n = len(self.datanodes)
        # Placement is a pure function of (file name, block ordinal), not a
        # shared round-robin cursor: concurrent writers (parallel reduce
        # tasks flushing output blocks) would otherwise interleave cursor
        # advances nondeterministically, making which blocks land on a
        # soon-to-die datanode — and therefore later failover counts —
        # vary run to run.  Scanning from the derived start still skips
        # dead nodes so the write pipeline only targets live replicas,
        # and consecutive blocks of one file still rotate across nodes.
        start = (zlib.crc32(node.name.encode()) + len(node.blocks)) % n
        picked: List[int] = []
        for i in range(n):
            node_id = (start + i) % n
            if self.datanodes[node_id].alive:
                picked.append(node_id)
                if len(picked) == self.replication:
                    break
        if not picked:
            raise DataNodeUnavailable("no live datanode to place a block on")
        return picked

    def _flush_block(self, node: INode, data: bytes) -> None:
        with self._mutate_lock:
            locations = self._pick_datanodes(node)
            block = self.namenode.allocate_block(node, len(data), locations)
            for node_id in locations:
                self.datanodes[node_id].store(block.block_id, data)
        # Global accounting counts the logical write once (not per replica);
        # replica traffic is modelled by the cost model's replication factor.
        self.io.record_write(len(data))
        tracer = self.tracer
        if tracer is not None:
            span = tracer.current()
            if span is not None:
                counters = span.counters
                counters["hdfs.bytes_written"] = \
                    counters.get("hdfs.bytes_written", 0) + len(data)
                counters["hdfs.write_ops"] = \
                    counters.get("hdfs.write_ops", 0) + 1

    def _read_block(self, block: BlockInfo, offset: int, length: int,
                    seek: bool) -> bytes:
        if not block.datanodes:
            raise FileNotFoundInHDFS(f"block {block.block_id} has no replicas")
        # Read from the first replica (locality is handled by the cost
        # model), failing over replica-by-replica past dead datanodes.
        data = None
        for index, node_id in enumerate(block.datanodes):
            datanode = self.datanodes[node_id]
            if not datanode.alive:
                continue
            data = datanode.read(block.block_id, offset, length, seek=seek)
            if index > 0:
                self._note_failover(block, node_id)
            break
        if data is None:
            raise DataNodeUnavailable(
                f"block {block.block_id}: all replicas on dead datanodes "
                f"{block.datanodes}")
        self.io.record_read(len(data), seek=seek)
        tracer = self.tracer
        if tracer is not None:
            span = tracer.current()
            if span is not None:
                counters = span.counters
                counters["hdfs.bytes_read"] = \
                    counters.get("hdfs.bytes_read", 0) + len(data)
                counters["hdfs.read_ops"] = \
                    counters.get("hdfs.read_ops", 0) + 1
                if seek:
                    counters["hdfs.seeks"] = counters.get("hdfs.seeks", 0) + 1
        return data

    def _note_failover(self, block: BlockInfo, used_node: int) -> None:
        if self.faults is not None:
            self.faults.replica_failover(block.block_id, used_node)
        tracer = self.tracer
        if tracer is not None:
            span = tracer.current()
            if span is not None:
                span.add("fault.hdfs_failovers")
