"""Hive's Bitmap Index (HIVE-1803).

For RCFile tables the index stores, per (dimension combination, file,
row-group offset), a bitmap of the matching row positions inside the row
group — so unlike the Compact Index it can skip rows *within* a split.  As
the paper notes, on TextFile every line is its own "block", so the bitmap
degenerates and adds nothing; this handler therefore requires RCFile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import IndexError_
from repro.hive import formats
from repro.hive.indexhandler import (BuildReport, IndexAccessPlan,
                                     IndexHandler, QueryIndexContext)
from repro.hive.metastore import IndexInfo, TableInfo
from repro.indexes import common
from repro.mapreduce.job import Job
from repro.mapreduce.splits import RCFileRowInputFormat
from repro.storage.schema import Column, DataType, Schema


class BitmapIndexHandler(IndexHandler):
    handler_name = "bitmap"

    # ------------------------------------------------------------------ build
    def build(self, session, index: IndexInfo) -> BuildReport:
        base = session.metastore.get_table(index.table)
        if base.stored_as.upper() != formats.RCFILE:
            raise IndexError_(
                "the Bitmap Index only improves RCFile tables (paper "
                f"Section 2.2); table {base.name!r} is {base.stored_as}")
        dims = list(index.columns)
        dim_positions = [base.schema.index_of(c) for c in dims]
        index_table = self._create_index_table(session, index, base)

        def mapper(group_offset, row, ctx):
            state = ctx.state
            current = (ctx.split.path, group_offset)
            if state.get("group") != current:
                state["group"] = current
                state["row_index"] = 0
            row_index = state["row_index"]
            state["row_index"] = row_index + 1
            key = (tuple(row[p] for p in dim_positions),
                   ctx.split.path, group_offset)
            ctx.emit(key, row_index)

        def reducer(key, row_indices, ctx):
            dim_values, filename, group_offset = key
            bitmap = ",".join(str(i) for i in sorted(set(row_indices)))
            ctx.state["writer"].write_row(
                tuple(dim_values) + (filename, group_offset, bitmap))

        def reduce_setup(ctx):
            path = f"{index_table.location}/{ctx.task_id:06d}_0"
            ctx.state["writer"] = formats.open_row_writer(
                session.fs, path, index_table, overwrite=True)

        def reduce_cleanup(ctx):
            ctx.state["writer"].close()

        job = Job(name=f"build-bitmap-{index.name}",
                  input_format=RCFileRowInputFormat(base.schema),
                  input_paths=[base.data_location],
                  mapper=mapper, reducer=reducer, num_reducers=4,
                  reduce_setup=reduce_setup, reduce_cleanup=reduce_cleanup)
        result = session.engine.run(job)

        size = session.fs.total_size(index_table.location)
        index.state["index_table"] = index_table.name
        index.built = True
        return BuildReport(index_name=index.name, handler=self.handler_name,
                           index_size_bytes=size,
                           build_time=session.cost_model.job_seconds(
                               result.stats),
                           job_stats=result.stats,
                           details={"index_table": index_table.name})

    def _create_index_table(self, session, index: IndexInfo,
                            base: TableInfo) -> TableInfo:
        name = common.index_table_name(index)
        if session.metastore.has_table(name):
            old = session.metastore.get_table(name)
            if session.fs.exists(old.location):
                session.fs.delete(old.location, recursive=True)
            session.metastore.drop_table(name)
        columns: List[Column] = [base.schema.column(c)
                                 for c in index.columns]
        columns.append(Column("_bucketname", DataType.STRING))
        columns.append(Column("_offset", DataType.BIGINT))
        columns.append(Column("_bitmaps", DataType.STRING))
        info = TableInfo(name=name, schema=Schema(columns),
                         stored_as=base.stored_as,
                         properties={"is_index_table": True})
        session.metastore.create_table(info)
        session.fs.mkdirs(info.location)
        return info

    # ------------------------------------------------------------------ query
    def plan_access(self, session, table: TableInfo, index: IndexInfo,
                    ctx: QueryIndexContext) -> Optional[IndexAccessPlan]:
        if table.stored_as.upper() != formats.RCFILE:
            return None
        if not common.constrains_some_dimension(index, ctx.ranges):
            return None
        index_table = session.metastore.get_table(
            index.state["index_table"])
        ndims = len(index.columns)

        #: (file, group_offset) -> allowed row positions
        allowed: Dict[Tuple[str, int], Set[int]] = {}
        records = 0
        for row in formats.scan_table_rows(session.fs, index_table):
            records += 1
            if not common.matches_ranges(row[:ndims], index.columns,
                                         ctx.ranges):
                continue
            filename = row[ndims]
            group_offset = row[ndims + 1]
            positions = {int(i) for i in row[ndims + 2].split(",") if i}
            allowed.setdefault((filename, group_offset),
                               set()).update(positions)

        offsets_by_file: Dict[str, List[int]] = {}
        for filename, group_offset in allowed:
            offsets_by_file.setdefault(filename, []).append(group_offset)
        for offsets in offsets_by_file.values():
            offsets.sort()
        chosen, total = common.splits_for_offsets(session.fs, table,
                                                  offsets_by_file)

        def group_filter(path: str, group_offset: int) -> bool:
            return (path, group_offset) in allowed

        def row_filter(path: str, group_offset: int, row_index: int) -> bool:
            positions = allowed.get((path, group_offset))
            return positions is not None and row_index in positions

        input_format = RCFileRowInputFormat(
            table.schema, columns=ctx.referenced_columns or None,
            group_filter=group_filter, row_filter=row_filter)
        index_time = common.index_scan_cost(session, index_table, records)
        return IndexAccessPlan(
            description=(f"bitmap({index.name}) splits "
                         f"{len(chosen)}/{total}, "
                         f"groups {len(allowed)}"),
            splits=chosen, input_format=input_format, index_time=index_time,
            handler=self.handler_name, mode="splits", total_splits=total,
            index_records_scanned=records)

    def drop(self, session, index: IndexInfo) -> None:
        name = index.state.get("index_table")
        if name and session.metastore.has_table(name):
            info = session.metastore.drop_table(name)
            if session.fs.exists(info.location):
                session.fs.delete(info.location, recursive=True)
