"""Shared machinery for index-table based handlers (Compact family)."""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

from repro.hive import formats
from repro.hive.metastore import IndexInfo, TableInfo
from repro.hiveql.predicates import RangeExtraction
from repro.mapreduce.cost import TimeBreakdown
from repro.mapreduce.splits import FileSplit
from repro.storage.schema import Column, DataType, Schema


def index_table_name(index: IndexInfo) -> str:
    """Hive's generated index-table name."""
    return f"default__{index.table.lower()}_{index.name.lower()}__"


def index_table_schema(base: TableInfo, index: IndexInfo,
                       extra: Sequence[Column] = ()) -> Schema:
    """Indexed dimensions + ``_bucketname`` + ``_offsets`` (+ extras)."""
    columns: List[Column] = [base.schema.column(c) for c in index.columns]
    columns.append(Column("_bucketname", DataType.STRING))
    columns.append(Column("_offsets", DataType.STRING))
    columns.extend(extra)
    return Schema(columns)


def matches_ranges(dim_values: Sequence, dim_names: Sequence[str],
                   ranges: RangeExtraction) -> bool:
    """Does an index-table row's dimension tuple satisfy every interval?"""
    for name, value in zip(dim_names, dim_values):
        interval = ranges.interval_for(name)
        if interval is not None and not interval.contains(value):
            return False
    return True


def constrains_some_dimension(index: IndexInfo,
                              ranges: RangeExtraction) -> bool:
    return any(ranges.interval_for(c) is not None for c in index.columns)


def splits_for_offsets(fs, table: TableInfo,
                       offsets_by_file: Dict[str, List[int]]
                       ) -> Tuple[List[FileSplit], int]:
    """Hive's getSplits filtering: keep the splits of the mentioned files
    that contain at least one offset.  Returns (chosen, total) split counts
    so callers can report the filtering ratio."""
    fmt = formats.input_format_for(table)
    root = table.data_location
    if not fs.exists(root):
        return [], 0
    all_splits = fmt.get_splits(fs, [root])
    chosen: List[FileSplit] = []
    for split in all_splits:
        offsets = offsets_by_file.get(split.path)
        if not offsets:
            continue
        idx = bisect.bisect_left(offsets, split.start)
        if idx < len(offsets) and offsets[idx] < split.end:
            chosen.append(split)
    return chosen, len(all_splits)


def scan_index_table(session, index_table: TableInfo):
    """Stream index-table rows, measuring the real I/O; returns
    (rows_iterator, finish) where finish() gives (bytes, records, time)."""
    return formats.scan_table_rows(session.fs, index_table)


def index_scan_cost(session, index_table: TableInfo,
                    records: int) -> TimeBreakdown:
    size = session.fs.total_size(index_table.data_location) \
        if session.fs.exists(index_table.data_location) else 0
    return session.cost_model.index_table_scan_seconds(size, records)
