"""Hive's Compact Index (HIVE-417), the paper's primary baseline.

Build (Listing 1 of the paper): a MapReduce job groups the base table by
(indexed dimensions, INPUT_FILE_NAME) and collects the set of
BLOCK_OFFSET_INSIDE_FILE values — line offsets for TextFile, row-group
offsets for RCFile.  The result is an *index table* stored like any Hive
table.

Query: Hive first scans the whole index table, writes the matching
``filename -> offsets`` pairs to a temp file, and ``getSplits`` keeps only
the splits containing at least one offset.  The chosen splits are then
scanned *fully* — the Compact Index cannot skip data inside a split, which
is the asymmetry DGFIndex exploits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hive import formats
from repro.hive.indexhandler import (BuildReport, IndexAccessPlan,
                                     IndexHandler, QueryIndexContext)
from repro.hive.metastore import IndexInfo, TableInfo
from repro.indexes import common
from repro.mapreduce.job import Job


class CompactIndexHandler(IndexHandler):
    handler_name = "compact"

    # ------------------------------------------------------------------ build
    def build(self, session, index: IndexInfo) -> BuildReport:
        base = session.metastore.get_table(index.table)
        dims = list(index.columns)
        dim_positions = [base.schema.index_of(c) for c in dims]

        index_table = self._create_index_table(session, index, base)
        writer_box: Dict[int, object] = {}

        def mapper(offset, row, ctx):
            key = tuple(row[p] for p in dim_positions) + (ctx.split.path,)
            ctx.emit(key, offset)

        def combiner(key, offsets, ctx):
            ctx.emit(key, sorted(set(offsets)))

        def reducer(key, offset_lists, ctx):
            merged = sorted({o for chunk in offset_lists
                             for o in (chunk if isinstance(chunk, list)
                                       else [chunk])})
            *dim_values, filename = key
            row = tuple(dim_values) + (
                filename, ",".join(str(o) for o in merged))
            ctx.state["writer"].write_row(row)

        def reduce_setup(ctx):
            path = f"{index_table.location}/{ctx.task_id:06d}_0"
            ctx.state["writer"] = formats.open_row_writer(
                session.fs, path, index_table, overwrite=True)

        def reduce_cleanup(ctx):
            ctx.state["writer"].close()

        input_format = formats.input_format_for(
            base, columns=dims if base.stored_as.upper() == formats.RCFILE
            else None)
        job = Job(name=f"build-compact-{index.name}",
                  input_format=input_format,
                  input_paths=[base.data_location],
                  mapper=mapper, combiner=combiner, reducer=reducer,
                  num_reducers=4, reduce_setup=reduce_setup,
                  reduce_cleanup=reduce_cleanup)
        result = session.engine.run(job)

        size = session.fs.total_size(index_table.location)
        build_time = session.cost_model.job_seconds(result.stats)
        index.state["index_table"] = index_table.name
        index.built = True
        return BuildReport(index_name=index.name, handler=self.handler_name,
                           index_size_bytes=size, build_time=build_time,
                           job_stats=result.stats,
                           details={"index_table": index_table.name,
                                    "index_records":
                                        result.stats.reduce_input_records})

    def _create_index_table(self, session, index: IndexInfo,
                            base: TableInfo) -> TableInfo:
        name = common.index_table_name(index)
        if session.metastore.has_table(name):
            old = session.metastore.get_table(name)
            if session.fs.exists(old.location):
                session.fs.delete(old.location, recursive=True)
            session.metastore.drop_table(name)
        info = TableInfo(name=name,
                         schema=common.index_table_schema(base, index),
                         stored_as=base.stored_as,
                         properties={"is_index_table": True})
        session.metastore.create_table(info)
        session.fs.mkdirs(info.location)
        return info

    # ------------------------------------------------------------------ query
    def plan_access(self, session, table: TableInfo, index: IndexInfo,
                    ctx: QueryIndexContext) -> Optional[IndexAccessPlan]:
        if not common.constrains_some_dimension(index, ctx.ranges):
            return None  # no predicate on any indexed dimension
        index_table = session.metastore.get_table(
            index.state["index_table"])

        offsets_by_file: Dict[str, List[int]] = {}
        records = 0
        ndims = len(index.columns)
        for row in formats.scan_table_rows(session.fs, index_table):
            records += 1
            if not common.matches_ranges(row[:ndims], index.columns,
                                         ctx.ranges):
                continue
            filename = row[ndims]
            offsets = [int(o) for o in row[ndims + 1].split(",") if o]
            offsets_by_file.setdefault(filename, []).extend(offsets)
        for offsets in offsets_by_file.values():
            offsets.sort()

        chosen, total = common.splits_for_offsets(session.fs, table,
                                                  offsets_by_file)
        index_time = common.index_scan_cost(session, index_table, records)
        return IndexAccessPlan(
            description=(f"compact({index.name}) "
                         f"splits {len(chosen)}/{total}"),
            splits=chosen, input_format=None, index_time=index_time,
            handler=self.handler_name, mode="splits", total_splits=total,
            index_records_scanned=records)

    def drop(self, session, index: IndexInfo) -> None:
        name = index.state.get("index_table")
        if name and session.metastore.has_table(name):
            info = session.metastore.drop_table(name)
            if session.fs.exists(info.location):
                session.fs.delete(info.location, recursive=True)
