"""Hive's Aggregate Index (HIVE-1694).

Built on the Compact Index: the index table carries a pre-computed
``count(*)`` per (dimension combination, file).  Using "index as data" and
query rewriting, a GROUP BY query over indexed dimensions becomes a scan of
the much smaller index table.

The paper notes the heavy restrictions: SELECT/WHERE/GROUP BY may reference
only indexed dimensions and the aggregations must be derivable from the
pre-computed list (only ``count`` is supported).  When the restrictions are
not met, the handler degrades to Compact-style split filtering.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.hive import formats
from repro.hive.indexhandler import (BuildReport, IndexAccessPlan,
                                     IndexHandler, QueryIndexContext)
from repro.hive.metastore import IndexInfo, TableInfo
from repro.indexes import common
from repro.indexes.compact import CompactIndexHandler
from repro.mapreduce.job import Job
from repro.storage.schema import Column, DataType


class AggregateIndexHandler(IndexHandler):
    handler_name = "aggregate"

    # ------------------------------------------------------------------ build
    def build(self, session, index: IndexInfo) -> BuildReport:
        base = session.metastore.get_table(index.table)
        dims = list(index.columns)
        dim_positions = [base.schema.index_of(c) for c in dims]
        index_table = self._create_index_table(session, index, base)

        def mapper(offset, row, ctx):
            key = tuple(row[p] for p in dim_positions) + (ctx.split.path,)
            ctx.emit(key, offset)

        def reducer(key, offsets, ctx):
            *dim_values, filename = key
            merged = sorted(set(offsets))
            row = tuple(dim_values) + (
                filename, ",".join(str(o) for o in merged), len(offsets))
            ctx.state["writer"].write_row(row)

        def reduce_setup(ctx):
            path = f"{index_table.location}/{ctx.task_id:06d}_0"
            ctx.state["writer"] = formats.open_row_writer(
                session.fs, path, index_table, overwrite=True)

        def reduce_cleanup(ctx):
            ctx.state["writer"].close()

        input_format = formats.input_format_for(
            base, columns=dims if base.stored_as.upper() == formats.RCFILE
            else None)
        job = Job(name=f"build-aggregate-{index.name}",
                  input_format=input_format,
                  input_paths=[base.data_location],
                  mapper=mapper, reducer=reducer, num_reducers=4,
                  reduce_setup=reduce_setup, reduce_cleanup=reduce_cleanup)
        result = session.engine.run(job)

        size = session.fs.total_size(index_table.location)
        index.state["index_table"] = index_table.name
        index.built = True
        return BuildReport(index_name=index.name, handler=self.handler_name,
                           index_size_bytes=size,
                           build_time=session.cost_model.job_seconds(
                               result.stats),
                           job_stats=result.stats,
                           details={"index_table": index_table.name})

    def _create_index_table(self, session, index: IndexInfo,
                            base: TableInfo) -> TableInfo:
        name = common.index_table_name(index)
        if session.metastore.has_table(name):
            old = session.metastore.get_table(name)
            if session.fs.exists(old.location):
                session.fs.delete(old.location, recursive=True)
            session.metastore.drop_table(name)
        schema = common.index_table_schema(
            base, index, extra=[Column("_count_of_all", DataType.BIGINT)])
        info = TableInfo(name=name, schema=schema, stored_as=base.stored_as,
                         properties={"is_index_table": True})
        session.metastore.create_table(info)
        session.fs.mkdirs(info.location)
        return info

    # ------------------------------------------------------------------ query
    def plan_access(self, session, table: TableInfo, index: IndexInfo,
                    ctx: QueryIndexContext) -> Optional[IndexAccessPlan]:
        rewrite = self._try_rewrite(session, index, ctx)
        if rewrite is not None:
            return rewrite
        # Degrade to compact-style split filtering using the same table.
        if not common.constrains_some_dimension(index, ctx.ranges):
            return None
        compact = CompactIndexHandler()
        plan = compact.plan_access(session, table, index, ctx)
        if plan is not None:
            plan.description = plan.description.replace(
                "compact(", "aggregate-as-compact(")
        return plan

    def _try_rewrite(self, session, index: IndexInfo,
                     ctx: QueryIndexContext) -> Optional[IndexAccessPlan]:
        """The index-as-data GROUP BY rewrite, if the restrictions hold."""
        if not ctx.group_columns or not ctx.agg_keys:
            return None
        indexed = {c.lower() for c in index.columns}
        if not set(ctx.group_columns) <= indexed:
            return None
        if any(key != "count(*)" for key in ctx.agg_keys):
            return None  # only count is pre-computed (as in Hive)
        if not ctx.ranges.exact:
            return None  # residual predicates reference other columns
        if not set(ctx.ranges.intervals) <= indexed:
            return None
        index_table = session.metastore.get_table(
            index.state["index_table"])
        dims = [c.lower() for c in index.columns]
        group_positions = [dims.index(g) for g in ctx.group_columns]
        count_position = len(dims) + 2  # after _bucketname, _offsets

        grouped: Dict[Tuple, int] = {}
        records = 0
        for row in formats.scan_table_rows(session.fs, index_table):
            records += 1
            if not common.matches_ranges(row[:len(dims)], index.columns,
                                         ctx.ranges):
                continue
            key = tuple(row[p] for p in group_positions)
            grouped[key] = grouped.get(key, 0) + row[count_position]
        rewrite_grouped = {key: tuple(count for _ in ctx.agg_keys)
                           for key, count in grouped.items()}
        index_time = common.index_scan_cost(session, index_table, records)
        return IndexAccessPlan(
            description=f"aggregate({index.name}) group-by rewrite",
            splits=[], index_time=index_time,
            rewrite_grouped=rewrite_grouped,
            handler=self.handler_name, mode="rewrite",
            index_records_scanned=records)

    def drop(self, session, index: IndexInfo) -> None:
        CompactIndexHandler().drop(session, index)
