"""Hive's built-in indexes (the paper's baselines): Compact, Aggregate,
Bitmap, plus partition-pruning support utilities.

All three are *index tables*: they materialize every combination of the
indexed dimensions together with record locations, which is exactly the
weakness the paper measures (Section 2.2).
"""

from repro.indexes.compact import CompactIndexHandler
from repro.indexes.aggregate import AggregateIndexHandler
from repro.indexes.bitmap import BitmapIndexHandler

__all__ = [
    "CompactIndexHandler",
    "AggregateIndexHandler",
    "BitmapIndexHandler",
]
