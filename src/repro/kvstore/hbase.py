"""A minimal HBase: ordered string keys, regions, gets/puts/scans.

DGFIndex stores one ``GFUKey -> GFUValue`` pair per grid-file unit here
(the paper uses HBase 0.94).  What matters for the reproduction is (a) an
ordered keyspace with range scans, (b) per-operation accounting that the
cost model converts into the "read index" part of the paper's stacked bars,
and (c) region splitting so the store scales like HBase does.

Values are arbitrary Python objects; sizes for accounting use the engine's
serialized-size estimator.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import KVStoreError
from repro.mapreduce.cost import KVStats

DEFAULT_MAX_REGION_KEYS = 100_000
#: rows a scan materializes per lock acquisition.
DEFAULT_SCAN_BATCH = 256


@dataclass
class Region:
    """A contiguous key range served together (HBase region)."""

    start_key: str  # inclusive; "" = open start
    keys: List[str] = field(default_factory=list)       # sorted
    values: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.keys)


class KVStore:
    """Sorted key-value store with HBase-flavoured operations.

    Point operations (get/put/contains/delete) are serialized by a lock so
    the parallel MapReduce engine's reduce tasks — which put GFU entries
    concurrently during a DGFIndex build — never corrupt the region lists
    or race on the op counters.  ``multi_get`` and ``scan`` take the lock
    once per *batch* rather than per key, so a scan observes a consistent
    region layout for each batch even while concurrent puts split regions
    between batches.

    ``stats`` counts **physical** operations only.  Layers that answer
    reads from a cache call :meth:`note_cached_gets` instead, which replays
    the per-query ``kv.gets`` trace counter (the *logical* accounting that
    the cost model and the differential harness consume) without touching
    ``stats`` — see :mod:`repro.service.cache`.

    Write listeners (:meth:`add_write_listener`) observe every ``put`` and
    ``delete`` by key, *after* the store's lock has been released, so a
    listener may take its own locks without creating an ordering cycle.
    """

    def __init__(self, max_region_keys: int = DEFAULT_MAX_REGION_KEYS):
        if max_region_keys < 2:
            raise KVStoreError("max_region_keys must be >= 2")
        self.max_region_keys = max_region_keys
        self._regions: List[Region] = [Region(start_key="")]
        self.stats = KVStats()
        #: optional :class:`repro.obs.trace.Tracer`; when set, each op also
        #: lands as a ``kv.*`` counter on the calling thread's active span.
        self.tracer = None
        #: optional :class:`repro.faults.FaultInjector`; when set, every
        #: operation first passes a transient-timeout gate that may retry
        #: (with simulated backoff) or raise
        #: :class:`~repro.errors.KVStoreTimeout`.
        self.faults = None
        self._lock = threading.RLock()
        self._write_listeners: List[Callable[[str], None]] = []

    def _trace_op(self, name: str, amount: int = 1) -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.add(name, amount)

    def _fault_gate(self, op: str, key: str) -> None:
        """Injected-timeout gate, run *before* the physical operation.

        Timing out before any store work keeps ``stats`` (physical op
        counts) identical with faults on or off: a timed-out attempt did
        no work, and the successful retry does exactly the fault-free
        run's single operation.  Retries surface as ``fault.*`` counters
        on the active span; exhaustion raises
        :class:`~repro.errors.KVStoreTimeout`.
        """
        faults = self.faults
        if faults is None:
            return
        retries = faults.kv_gate(op, key)
        if retries:
            self._trace_op("fault.kv_timeouts", retries)
            self._trace_op("fault.kv_retries", retries)

    # ----------------------------------------------------------- listeners
    def add_write_listener(self, listener: Callable[[str], None]) -> None:
        """Call ``listener(key)`` after every put/delete (cache coherence)."""
        self._write_listeners.append(listener)

    def _notify_write(self, key: str) -> None:
        for listener in self._write_listeners:
            listener(key)

    def note_cached_gets(self, amount: int) -> None:
        """Replay ``amount`` logical gets answered by a cache layer.

        Feeds the calling thread's active trace span only — never
        ``stats`` — so per-query accounting (and therefore simulated
        times) is identical whether a read was physical or cached, while
        ``stats`` keeps measuring real store traffic.
        """
        if amount:
            self._trace_op("kv.gets", amount)

    # --------------------------------------------------------------- regions
    @property
    def regions(self) -> List[Region]:
        return list(self._regions)

    def _region_for(self, key: str) -> Region:
        starts = [r.start_key for r in self._regions]
        idx = bisect.bisect_right(starts, key) - 1
        return self._regions[max(idx, 0)]

    def _maybe_split(self, region: Region) -> None:
        if len(region) <= self.max_region_keys:
            return
        mid = len(region.keys) // 2
        right_keys = region.keys[mid:]
        right = Region(start_key=right_keys[0], keys=right_keys,
                       values={k: region.values.pop(k) for k in right_keys})
        del region.keys[mid:]
        idx = self._regions.index(region)
        self._regions.insert(idx + 1, right)

    # ------------------------------------------------------------------- ops
    def put(self, key: str, value: Any) -> None:
        if not isinstance(key, str):
            raise KVStoreError(f"keys must be strings, got {type(key)}")
        self._fault_gate("put", key)
        with self._lock:
            region = self._region_for(key)
            if key not in region.values:
                bisect.insort(region.keys, key)
            region.values[key] = value
            self.stats.puts += 1
            self._maybe_split(region)
        self._trace_op("kv.puts")
        self._notify_write(key)

    def put_all(self, items: Dict[str, Any]) -> None:
        for key, value in items.items():
            self.put(key, value)

    def get(self, key: str) -> Optional[Any]:
        self._fault_gate("get", key)
        self._trace_op("kv.gets")
        with self._lock:
            self.stats.gets += 1
            return self._region_for(key).values.get(key)

    def multi_get(self, keys) -> Dict[str, Any]:
        """Batch get; missing keys are omitted from the result.

        One lock acquisition covers the whole batch; every probed key
        (present or not) counts as one get, exactly as the per-key loop
        it replaces did.
        """
        keys = list(keys)
        if keys:
            self._fault_gate("multi_get", keys[0])
        out: Dict[str, Any] = {}
        with self._lock:
            self.stats.gets += len(keys)
            for key in keys:
                value = self._region_for(key).values.get(key)
                if value is not None:
                    out[key] = value
        if keys:
            self._trace_op("kv.gets", len(keys))
        return out

    def delete(self, key: str) -> bool:
        self._fault_gate("delete", key)
        with self._lock:
            region = self._region_for(key)
            if key not in region.values:
                return False
            del region.values[key]
            idx = bisect.bisect_left(region.keys, key)
            del region.keys[idx]
        self._notify_write(key)
        return True

    def contains(self, key: str) -> bool:
        self._fault_gate("get", key)
        self._trace_op("kv.gets")
        with self._lock:
            self.stats.gets += 1
            return key in self._region_for(key).values

    def scan(self, start_key: str = "", stop_key: Optional[str] = None,
             batch_size: int = DEFAULT_SCAN_BATCH
             ) -> Iterator[Tuple[str, Any]]:
        """Yield ``(key, value)`` for start_key <= key < stop_key, in order.

        Rows are fetched in batches of ``batch_size``, each under one lock
        acquisition, and the scan resumes *by key* after every batch.  A
        region split between batches therefore cannot skip or duplicate
        rows (the resume key is independent of region boundaries), and
        within a batch the layout is consistent.  ``rows_scanned`` is
        counted per fetched batch, so abandoning a scan mid-batch may
        count up to one batch of unconsumed rows.
        """
        if batch_size < 1:
            raise KVStoreError(f"batch_size must be >= 1, got {batch_size}")
        next_key = start_key
        while True:
            self._fault_gate("scan", next_key)
            batch: List[Tuple[str, Any]] = []
            with self._lock:
                for region in self._regions:
                    if stop_key is not None and region.start_key >= stop_key:
                        break
                    lo = bisect.bisect_left(region.keys, next_key)
                    for key in region.keys[lo:]:
                        if stop_key is not None and key >= stop_key:
                            break
                        batch.append((key, region.values[key]))
                        if len(batch) >= batch_size:
                            break
                    if len(batch) >= batch_size:
                        break
                self.stats.rows_scanned += len(batch)
            if batch:
                self._trace_op("kv.rows_scanned", len(batch))
            yield from batch
            if len(batch) < batch_size:
                return
            # Resume strictly after the last yielded key; "\x00" is the
            # smallest possible key suffix.
            next_key = batch[-1][0] + "\x00"

    def count(self) -> int:
        return sum(len(r) for r in self._regions)

    def keys(self) -> List[str]:
        out: List[str] = []
        for region in self._regions:
            out.extend(region.keys)
        return out

    def snapshot_stats(self) -> KVStats:
        return KVStats(self.stats.gets, self.stats.puts,
                       self.stats.rows_scanned)

    def stats_delta(self, earlier: KVStats) -> KVStats:
        return KVStats(self.stats.gets - earlier.gets,
                       self.stats.puts - earlier.puts,
                       self.stats.rows_scanned - earlier.rows_scanned)
