"""An HBase-like sorted key-value store (DGFIndex's index storage)."""

from repro.kvstore.hbase import KVStore, Region

__all__ = ["KVStore", "Region"]
