"""``python -m repro.bench``: run all experiments, write EXPERIMENTS.md."""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.lab import MeterLab, MeterLabConfig, TpchLabConfig
from repro.bench.report import collect_reference_traces, run_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce every table/figure of the DGFIndex paper")
    parser.add_argument("--output", default="EXPERIMENTS.md",
                        help="where to write the report (default: "
                             "EXPERIMENTS.md; '-' for stdout)")
    parser.add_argument("--users", type=int, default=2000,
                        help="meter-data users (default 2000)")
    parser.add_argument("--days", type=int, default=10,
                        help="meter-data days (default 10)")
    parser.add_argument("--readings", type=int, default=4,
                        help="readings per user-day (default 4)")
    parser.add_argument("--tpch-orders", type=int, default=12000,
                        help="TPC-H orders (default 12000)")
    parser.add_argument("--traces", default="BENCH_TRACES.json",
                        help="where to write the reference query traces "
                             "(default: BENCH_TRACES.json; '' to skip)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    meter_config = MeterLabConfig(num_users=args.users, num_days=args.days,
                                  readings_per_day=args.readings)
    report = run_all(
        meter_config,
        TpchLabConfig(num_orders=args.tpch_orders),
        verbose=not args.quiet)
    if args.output == "-":
        print(report)
    else:
        pathlib.Path(args.output).write_text(report)
        if not args.quiet:
            print(f"wrote {args.output}")
    if args.traces:
        document = collect_reference_traces(MeterLab(meter_config))
        pathlib.Path(args.traces).write_text(
            json.dumps(document, sort_keys=True, indent=2) + "\n")
        if not args.quiet:
            print(f"wrote {args.traces}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
