"""Benchmark harness: one experiment per table/figure of the paper.

``python -m repro.bench`` runs every experiment and regenerates the
measured sections of ``EXPERIMENTS.md``.  The pytest-benchmark files under
``benchmarks/`` wrap the same experiments for timing.
"""

from repro.bench.lab import MeterLab, MeterLabConfig, TpchLab, TpchLabConfig

__all__ = ["MeterLab", "MeterLabConfig", "TpchLab", "TpchLabConfig"]
