"""Labs: fully-loaded system instances shared by experiments and benches.

A *lab* owns the generated dataset and one session per compared system —
exactly the paper's experimental setup scaled down:

* ``scan``    — TextFile table, no index (the ScanTable baseline);
* ``dgf[c]``  — TextFile table + 3-D DGFIndex for interval case c in
  {large, medium, small} (the paper's 100/1000/10000 userId intervals,
  scaled), pre-computing ``sum(powerconsumed)`` and ``count(*)``;
* ``compact`` — RCFile table + 2-D Compact Index on (regionId, ts) (the
  paper found the 3-D index table as big as the base table and kept 2-D);
* ``hadoopdb`` — 28 nodes, chunked by userId, composite index per chunk.

Every session also holds the user-info archive table for join queries, and
every cost model uses ``data_scale = paper records / generated records``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.units import KiB
from repro.data.meter import (METER_SCHEMA, USER_INFO_SCHEMA,
                              MeterDataConfig, MeterDataGenerator)
from repro.data.tpch import (LINEITEM_SCHEMA, LineitemGenerator, TPCHConfig,
                             q6_parameters, q6_sql)
from repro.hadoopdb.engine import HadoopDB, HadoopDBConfig
from repro.hive.session import HiveSession, QueryOptions
from repro.storage.schema import Schema

#: the paper's interval cases: userId split into 100 / 1000 / 10000
#: intervals (large/medium/small interval size); scaled to the lab's user
#: count keeping the 1:5:25 ratios so per-cell record densities stay
#: meaningful at laptop scale.
INTERVAL_CASES = ("large", "medium", "small")
_CASE_DIVISORS = {"large": 20, "medium": 100, "small": 500}

SELECTIVITIES = ("point", 0.05, 0.12)


def _schema_ddl(name: str, schema: Schema, stored_as: str = "TEXTFILE") -> str:
    cols = ", ".join(f"{c.name} {c.dtype.value}" for c in schema.columns)
    return f"CREATE TABLE {name} ({cols}) STORED AS {stored_as}"


@dataclass(frozen=True)
class MeterLabConfig:
    """Scaled-down shape of the real-world experiment (Section 5.3)."""

    num_users: int = 2000
    num_days: int = 10
    readings_per_day: int = 4
    block_bytes: int = 256 * KiB
    seed: int = 20140801

    def meter_config(self) -> MeterDataConfig:
        return MeterDataConfig(num_users=self.num_users,
                               num_days=self.num_days,
                               readings_per_day=self.readings_per_day,
                               seed=self.seed)


class MeterLab:
    """All systems loaded with the same meter dataset (built lazily)."""

    def __init__(self, config: MeterLabConfig = MeterLabConfig()):
        self.config = config
        self.generator = MeterDataGenerator(config.meter_config())
        self.rows: List[Tuple] = list(self.generator.iter_rows())
        self.user_rows = self.generator.user_info_rows()
        self.data_scale = (self.generator.config.paper_records
                           / len(self.rows))
        self._scan: Optional[HiveSession] = None
        self._dgf: Dict[str, HiveSession] = {}
        self._compact: Optional[HiveSession] = None
        self._hadoopdb: Optional[HadoopDB] = None

    # ------------------------------------------------------------- sessions
    def _new_session(self, execution=None) -> HiveSession:
        session = HiveSession(data_scale=self.data_scale,
                              execution=execution)
        session.fs.block_size = self.config.block_bytes
        return session

    def session_with_execution(self, execution=None) -> HiveSession:
        """A fresh, *uncached* TEXTFILE session on the given
        :class:`~repro.mapreduce.cluster.ExecutionConfig` — used by the
        parallel-speedup benchmark to compare engine modes on equal data."""
        session = self._new_session(execution)
        self._load_meter(session, "TEXTFILE")
        return session

    def _load_meter(self, session: HiveSession, stored_as: str) -> None:
        session.execute(_schema_ddl("meterdata", METER_SCHEMA, stored_as))
        session.execute(_schema_ddl("userinfo", USER_INFO_SCHEMA))
        # One file per ~third of the month, as collection days accumulate.
        days = self.config.num_days
        per_file = max(1, days // 3)
        rows_per_day = len(self.rows) // days
        for first in range(0, days, per_file):
            chunk = self.rows[first * rows_per_day:
                              (first + per_file) * rows_per_day]
            session.load_rows("meterdata", chunk)
        session.load_rows("userinfo", self.user_rows)

    @property
    def scan_session(self) -> HiveSession:
        if self._scan is None:
            self._scan = self._new_session()
            self._load_meter(self._scan, "TEXTFILE")
        return self._scan

    def interval_size(self, case: str) -> int:
        return max(1, self.config.num_users // _CASE_DIVISORS[case])

    def _dgf_ddl(self, case: str) -> str:
        interval = self.interval_size(case)
        return ("CREATE INDEX dgf_idx ON TABLE meterdata"
                "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES ("
                f"'userid'='0_{interval}', 'regionid'='0_1', "
                f"'ts'='{self.generator.config.start_date}_1d', "
                "'precompute'='sum(powerconsumed),count(*)')")

    def dgf_session(self, case: str) -> HiveSession:
        if case not in self._dgf:
            self._dgf[case] = self.fresh_dgf_session(case)
        return self._dgf[case]

    def fresh_dgf_session(self, case: str, *, faults=None,
                          execution=None) -> HiveSession:
        """A fresh, *uncached* DGF session — same data, chunking and index
        DDL as :meth:`dgf_session`, but never shared, so callers may wire
        in a :class:`~repro.faults.FaultPlan` or a custom
        :class:`~repro.mapreduce.cluster.ExecutionConfig` without
        perturbing the cached sessions other experiments compare against
        (the recovery-overhead benchmark does both)."""
        session = HiveSession(data_scale=self.data_scale,
                              execution=execution, faults=faults)
        session.fs.block_size = self.config.block_bytes
        self._load_meter(session, "TEXTFILE")
        session.execute(self._dgf_ddl(case))
        return session

    @property
    def compact_session(self) -> HiveSession:
        """RCFile base table + 2-D Compact Index (regionid, ts)."""
        if self._compact is None:
            session = self._new_session()
            self._load_meter(session, "RCFILE")
            session.execute("CREATE INDEX cmp_idx ON TABLE meterdata"
                            "(regionid, ts) AS 'compact'")
            self._compact = session
        return self._compact

    @property
    def hadoopdb(self) -> HadoopDB:
        if self._hadoopdb is None:
            db = HadoopDB(METER_SCHEMA, ["userid", "regionid", "ts"],
                          partition_column="userid",
                          config=HadoopDBConfig(),
                          data_scale=self.data_scale)
            db.load(self.rows)
            db.load_archive(self.user_rows,
                            USER_INFO_SCHEMA.index_of("userid"))
            self._hadoopdb = db
        return self._hadoopdb

    # --------------------------------------------------------------- queries
    def predicate(self, selectivity) -> str:
        """The paper's MDRQ predicate shape: ranges on regionId, userId and
        time; selectivity is varied through the userId range."""
        import datetime
        start_date = datetime.date.fromisoformat(
            self.generator.config.start_date)
        num_regions = self.generator.config.num_regions
        if selectivity == "point":
            user = self.config.num_users // 3
            return (f"regionid >= 0 AND regionid <= {num_regions - 1} "
                    f"AND userid = {user} AND ts = '{start_date}'")
        # As in the paper, the predicate ranges over all three dimensions;
        # the region range keeps 6 of 11 regions and the time range half of
        # the days, and the userId width is solved so the overall fraction
        # of matching records hits the target selectivity.
        region_lo, region_hi = 2, 7
        region_fraction = (region_hi - region_lo + 1) / num_regions
        day_lo = self.config.num_days // 5
        day_hi = day_lo + max(1, self.config.num_days // 2)
        time_fraction = (day_hi - day_lo) / self.config.num_days
        user_fraction = min(0.95, selectivity
                            / (region_fraction * time_fraction))
        low, high = self.generator.user_range_for_selectivity(user_fraction)
        ts_lo = (start_date + datetime.timedelta(days=day_lo)).isoformat()
        ts_hi = (start_date + datetime.timedelta(days=day_hi)).isoformat()
        return (f"regionid >= {region_lo} AND regionid <= {region_hi} "
                f"AND userid >= {low} AND userid < {high} "
                f"AND ts >= '{ts_lo}' AND ts < '{ts_hi}'")

    def query_sql(self, kind: str, selectivity) -> str:
        """The paper's Listings 4 (aggregation), 5 (group by), 6 (join)."""
        where = self.predicate(selectivity)
        if kind == "agg":
            return f"SELECT sum(powerconsumed) FROM meterdata WHERE {where}"
        if kind == "groupby":
            return (f"SELECT ts, sum(powerconsumed) FROM meterdata "
                    f"WHERE {where} GROUP BY ts")
        if kind == "join":
            qualified = (where.replace("regionid", "t1.regionid")
                         .replace("userid", "t1.userid")
                         .replace("ts ", "t1.ts ").replace("ts=", "t1.ts="))
            return ("INSERT OVERWRITE DIRECTORY '/tmp/join-out' "
                    "SELECT t2.username, t1.powerconsumed FROM meterdata t1 "
                    "JOIN userinfo t2 ON t1.userid = t2.userid "
                    f"WHERE {qualified}")
        raise ValueError(f"unknown query kind {kind!r}")

    def intervals_for(self, selectivity):
        """The same predicate as per-column intervals (HadoopDB pushdown)."""
        from repro.hiveql.predicates import extract_ranges
        from repro.hiveql.parser import parse_expression
        return extract_ranges(
            parse_expression(self.predicate(selectivity))).intervals

    def accurate_records(self, selectivity) -> int:
        """Ground truth: records matching the predicate (a full count)."""
        sql = (f"SELECT count(*) FROM meterdata "
               f"WHERE {self.predicate(selectivity)}")
        result = self.scan_session.execute(sql,
                                           QueryOptions(use_index=False))
        return result.scalar()


# ---------------------------------------------------------------- TPC-H lab
@dataclass(frozen=True)
class TpchLabConfig:
    num_orders: int = 12000
    block_bytes: int = 512 * KiB
    seed: int = 19920101

    def tpch_config(self) -> TPCHConfig:
        return TPCHConfig(num_orders=self.num_orders, seed=self.seed)


class TpchLab:
    """Lineitem loaded into scan / DGF / Compact-2D / Compact-3D sessions."""

    def __init__(self, config: TpchLabConfig = TpchLabConfig()):
        self.config = config
        generator = LineitemGenerator(config.tpch_config())
        self.rows: List[Tuple] = list(generator.iter_rows())
        self.data_scale = (generator.config.paper_records / len(self.rows))
        self.params = q6_parameters()
        self._scan: Optional[HiveSession] = None
        self._dgf: Optional[HiveSession] = None
        self._compact: Optional[HiveSession] = None

    def _new_session(self, execution=None) -> HiveSession:
        session = HiveSession(data_scale=self.data_scale,
                              execution=execution)
        session.fs.block_size = self.config.block_bytes
        return session

    def session_with_execution(self, execution=None) -> HiveSession:
        """A fresh, *uncached* TEXTFILE session on the given
        :class:`~repro.mapreduce.cluster.ExecutionConfig` — used by the
        vectorized-speedup benchmark to compare engine modes on equal
        data (mirrors :meth:`MeterLab.session_with_execution`)."""
        session = self._new_session(execution)
        self._load(session, "TEXTFILE")
        return session

    def _load(self, session: HiveSession, stored_as: str) -> None:
        session.execute(_schema_ddl("lineitem", LINEITEM_SCHEMA, stored_as))
        # dbgen writes several chunked files; lineitem has no physical order
        third = len(self.rows) // 3 + 1
        for i in range(0, len(self.rows), third):
            session.load_rows("lineitem", self.rows[i:i + third])

    @property
    def scan_session(self) -> HiveSession:
        if self._scan is None:
            self._scan = self._new_session()
            self._load(self._scan, "TEXTFILE")
        return self._scan

    @property
    def dgf_session(self) -> HiveSession:
        """The paper's policy: l_discount 0.01, l_quantity 1.0,
        l_shipdate 100 days."""
        if self._dgf is None:
            session = self._new_session()
            self._load(session, "TEXTFILE")
            session.execute(
                "CREATE INDEX dgf_q6 ON TABLE lineitem"
                "(l_discount, l_quantity, l_shipdate) AS 'dgf' "
                "IDXPROPERTIES ('l_discount'='0_0.01', "
                "'l_quantity'='0_1.0', 'l_shipdate'='1992-01-01_100d', "
                "'precompute'='sum(l_extendedprice * l_discount)')")
            self._dgf = session
        return self._dgf

    @property
    def compact_session(self) -> HiveSession:
        """RCFile lineitem + both 2-D and 3-D Compact indexes."""
        if self._compact is None:
            session = self._new_session()
            self._load(session, "RCFILE")
            session.execute("CREATE INDEX cmp2 ON TABLE lineitem"
                            "(l_discount, l_quantity) AS 'compact'")
            session.execute("CREATE INDEX cmp3 ON TABLE lineitem"
                            "(l_discount, l_quantity, l_shipdate) "
                            "AS 'compact'")
            self._compact = session
        return self._compact

    def q6(self) -> str:
        return q6_sql(self.params)
