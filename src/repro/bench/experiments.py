"""One experiment per table/figure of the paper's evaluation section.

Every experiment returns an :class:`ExpResult` whose rows are exactly the
series the paper reports (systems x selectivities / interval sizes), with
simulated paper-scale seconds split into the paper's stacked components
("read index and other" / "read data and process") plus the measured raw
counters.  Result *values* are cross-checked between systems inside each
experiment — a reproduction that returns wrong answers fast would be
meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.lab import INTERVAL_CASES, SELECTIVITIES, MeterLab, TpchLab
from repro.common.tables import render_table
from repro.common.units import human_bytes
from repro.data.meter import METER_SCHEMA, MeterDataConfig, MeterDataGenerator
from repro.errors import BenchmarkError
from repro.hive.session import QueryOptions
from repro.rdbms.writer import measure_dbms_write, measure_hdfs_write


@dataclass
class ExpResult:
    """Rendered + structured outcome of one experiment."""

    exp_id: str
    title: str
    headers: List[str]
    rows: List[Sequence[Any]]
    notes: str = ""
    data: Dict[str, Any] = field(default_factory=dict)

    def markdown(self) -> str:
        table = render_table(self.headers, self.rows,
                             title=f"{self.exp_id}: {self.title}")
        if self.notes:
            return f"{table}\n\n{self.notes}"
        return table


def _sel_label(selectivity) -> str:
    return selectivity if selectivity == "point" \
        else f"{int(selectivity * 100)}%"


def _check_close(expected, actual, context: str, tolerance=1e-6) -> None:
    if expected is None and actual is None:
        return
    if expected is None or actual is None:
        raise BenchmarkError(f"{context}: {expected!r} vs {actual!r}")
    if abs(float(expected) - float(actual)) > tolerance * max(
            1.0, abs(float(expected))):
        raise BenchmarkError(
            f"{context}: results diverge: {expected} vs {actual}")


# ------------------------------------------------------------------- Figure 3
def fig3_write_throughput(num_rows: int = 30000) -> ExpResult:
    """DBMS-X (with/without index) vs HDFS write throughput (MB/s)."""
    config = MeterDataConfig(num_users=max(100, num_rows // 10),
                             num_days=10, readings_per_day=1)
    generator = MeterDataGenerator(config)
    rows = [row for _i, row in zip(range(num_rows), generator.iter_rows())]
    # Meter records carry random userIds relative to the B+-tree, because
    # records arrive time-ordered while the index is keyed by userId.
    key = METER_SCHEMA.index_of("userid")
    with_index = measure_dbms_write(rows, key, with_index=True)
    without_index = measure_dbms_write(rows, key, with_index=False)
    hdfs = measure_hdfs_write(rows)
    out_rows = [
        (r.label, round(r.mb_per_second, 2), r.rows, r.pool_misses,
         r.page_splits)
        for r in (with_index, without_index, hdfs)
    ]
    result = ExpResult(
        exp_id="fig3", title="Write throughput: DBMS-X vs HDFS (MB/s)",
        headers=["system", "MB/s", "rows", "pool_misses", "page_splits"],
        rows=out_rows,
        notes=("Paper (log2 axis): DBMS-X-with-index < DBMS-X-without-index "
               "<< HDFS, roughly 2-4 / 8-16 / 32-64 MB/s."),
        data={"throughputs": {r.label: r.mb_per_second
                              for r in (with_index, without_index, hdfs)}})
    t = result.data["throughputs"]
    if not (t["DBMS-X with index"] < t["DBMS-X without index"] < t["HDFS"]):
        raise BenchmarkError(f"fig3 ordering violated: {t}")
    return result


# -------------------------------------------------------------------- Table 2
def table2_index_build(lab: MeterLab) -> ExpResult:
    """Index size and construction time (real-world dataset)."""
    rows: List[Tuple] = []
    data: Dict[str, Dict[str, float]] = {}

    compact = lab.compact_session
    if not any(i.name == "cmp3d"
               for i in compact.metastore.indexes_on("meterdata")):
        compact.execute("CREATE INDEX cmp3d ON TABLE meterdata"
                        "(userid, regionid, ts) AS 'compact'")
    report3 = compact.build_report("meterdata", "cmp3d")
    report2 = compact.build_report("meterdata", "cmp_idx")
    base_size = compact.fs.total_size(
        compact.metastore.get_table("meterdata").data_location)
    for label, report, dims in (("Compact", report3, 3),
                                ("Compact", report2, 2)):
        rows.append((label, "RCFile", dims,
                     human_bytes(report.index_size_bytes),
                     round(report.build_time.total, 1)))
        data[f"compact-{dims}d"] = {
            "size": report.index_size_bytes,
            "seconds": report.build_time.total}
    for case in INTERVAL_CASES:
        session = lab.dgf_session(case)
        report = session.build_report("meterdata", "dgf_idx")
        rows.append((f"DGF-{case[0].upper()}", "TextFile", 3,
                     human_bytes(report.index_size_bytes),
                     round(report.build_time.total, 1)))
        data[f"dgf-{case}"] = {"size": report.index_size_bytes,
                               "seconds": report.build_time.total,
                               "gfus": report.details["gfus"]}

    # Invariants the paper reports that survive the scale-down (at paper
    # scale there are ~3300 records per GFU; at laptop scale the grid is
    # proportionally coarser, so absolute size *ratios* compress):
    # the 3-D compact index explodes relative to the 2-D one and dominates
    # DGF-L, and DGF sizes grow as the interval shrinks.
    if not data["compact-3d"]["size"] > 20 * data["compact-2d"]["size"]:
        raise BenchmarkError("table2: compact-3d did not explode vs 2-d")
    if not data["compact-3d"]["size"] > data["dgf-large"]["size"]:
        raise BenchmarkError("table2: compact-3d smaller than DGF-L")
    if not (data["dgf-large"]["size"] < data["dgf-medium"]["size"]
            < data["dgf-small"]["size"]):
        raise BenchmarkError("table2: DGF sizes not ordered L < M < S")
    data["base_table_size"] = base_size
    return ExpResult(
        exp_id="table2", title="Index size and construction time",
        headers=["index", "table type", "dims", "size", "build seconds"],
        rows=rows,
        notes=(f"Base RCFile table: {human_bytes(base_size)}.  Paper: "
               "Compact-3D 821GB (~= base table), Compact-2D 7MB, "
               "DGF L/M/S 0.94/3/13MB; build time DGF > Compact-3D "
               "because the base table is reorganized through a shuffle."),
        data=data)


# --------------------------------------------- Figures 8-10 + Table 3 (agg)
def aggregation_queries(lab: MeterLab) -> ExpResult:
    """Aggregation MDRQ across selectivities and interval sizes."""
    return _query_experiment(
        lab, kind="agg",
        exp_id="fig8-10+table3",
        title="Aggregation query (sum) — times and records read")


# ------------------------------------------- Figures 11-13 + Table 4 (group)
def groupby_queries(lab: MeterLab) -> ExpResult:
    return _query_experiment(
        lab, kind="groupby",
        exp_id="fig11-13+table4",
        title="GROUP BY query — times and records read")


# -------------------------------------------------- Figures 14-16 (join)
def join_queries(lab: MeterLab) -> ExpResult:
    return _query_experiment(
        lab, kind="join",
        exp_id="fig14-16",
        title="JOIN query (meterdata x userInfo) — times and records read")


def _query_experiment(lab: MeterLab, kind: str, exp_id: str,
                      title: str) -> ExpResult:
    rows: List[Tuple] = []
    data: Dict[str, Any] = {}
    for selectivity in SELECTIVITIES:
        label = _sel_label(selectivity)
        sql = lab.query_sql(kind, selectivity)
        accurate = lab.accurate_records(selectivity)

        scan = lab.scan_session.execute(sql, QueryOptions(use_index=False))
        reference = _reference_value(scan, kind)
        rows.append((label, "ScanTable", "-",
                     round(scan.stats.time.read_index_and_other, 1),
                     round(scan.stats.time.read_data_and_process, 1),
                     round(scan.stats.simulated_seconds, 1),
                     scan.stats.records_read, accurate))
        data[f"{label}/scan"] = _series(scan, accurate)

        for case in INTERVAL_CASES:
            result = lab.dgf_session(case).execute(
                sql, QueryOptions(index_name="dgf_idx"))
            _check_close(reference, _reference_value(result, kind),
                         f"{exp_id} {label} dgf-{case}")
            rows.append((label, f"DGF-{case[0].upper()}", case,
                         round(result.stats.time.read_index_and_other, 1),
                         round(result.stats.time.read_data_and_process, 1),
                         round(result.stats.simulated_seconds, 1),
                         result.stats.records_read, accurate))
            data[f"{label}/dgf-{case}"] = _series(result, accurate)

        compact = lab.compact_session.execute(
            sql, QueryOptions(index_name="cmp_idx"))
        _check_close(reference, _reference_value(compact, kind),
                     f"{exp_id} {label} compact")
        rows.append((label, "Compact-2D", "-",
                     round(compact.stats.time.read_index_and_other, 1),
                     round(compact.stats.time.read_data_and_process, 1),
                     round(compact.stats.simulated_seconds, 1),
                     compact.stats.records_read, accurate))
        data[f"{label}/compact"] = _series(compact, accurate)

        hdb = _run_hadoopdb(lab, kind, selectivity)
        _check_close(reference, hdb["reference"],
                     f"{exp_id} {label} hadoopdb")
        rows.append((label, "HadoopDB", "-",
                     round(hdb["time"].read_index_and_other, 1),
                     round(hdb["time"].read_data_and_process, 1),
                     round(hdb["time"].total, 1),
                     hdb["rows_examined"], accurate))
        data[f"{label}/hadoopdb"] = {
            "seconds": hdb["time"].total,
            "records_read": hdb["rows_examined"],
            "accurate": accurate,
        }
    notes = ("Per selectivity, the paper's ordering: DGF fastest (nearly "
             "flat for aggregation thanks to pre-computed headers), Compact "
             "and HadoopDB degrade toward ScanTable as selectivity grows.")
    return ExpResult(exp_id=exp_id, title=title,
                     headers=["selectivity", "system", "interval",
                              "index+other s", "data+process s", "total s",
                              "records read", "accurate"],
                     rows=rows, notes=notes, data=data)


def _series(result, accurate: int) -> Dict[str, Any]:
    return {
        "seconds": result.stats.simulated_seconds,
        "index_seconds": result.stats.time.read_index_and_other,
        "data_seconds": result.stats.time.read_data_and_process,
        "records_read": result.stats.records_read,
        "accurate": accurate,
        "index_used": result.stats.index_used,
    }


def _reference_value(result, kind: str):
    """A comparable scalar summary of a query result for cross-checking."""
    if kind == "agg":
        return result.rows[0][0]
    if kind == "groupby":
        return round(sum(v for _k, v in result.rows), 6)
    if kind == "join":
        return round(sum(row[1] for row in result.rows), 6)
    raise ValueError(kind)


def _run_hadoopdb(lab: MeterLab, kind: str, selectivity) -> Dict[str, Any]:
    intervals = lab.intervals_for(selectivity)
    value_pos = METER_SCHEMA.index_of("powerconsumed")
    if kind == "agg":
        res = lab.hadoopdb.aggregate(intervals, value_pos)
        reference = res.rows[0][0]
    elif kind == "groupby":
        res = lab.hadoopdb.group_by(intervals,
                                    METER_SCHEMA.index_of("ts"), value_pos)
        reference = round(sum(v for _k, v in res.rows), 6)
    elif kind == "join":
        key_pos = METER_SCHEMA.index_of("userid")
        res = lab.hadoopdb.join(
            intervals, key_pos,
            project=lambda fact, user: (user[1], fact[value_pos]))
        reference = round(sum(row[1] for row in res.rows), 6)
    else:
        raise ValueError(kind)
    return {"time": res.time, "rows_examined": res.stats.rows_examined,
            "reference": reference}


# ------------------------------------------------------------------ Figure 17
def partial_query(lab: MeterLab) -> ExpResult:
    """Partial-specified predicate: fewer predicate dims than index dims."""
    import datetime
    start = lab.generator.config.start_date
    day = (datetime.date.fromisoformat(start)
           + datetime.timedelta(days=lab.config.num_days // 2)).isoformat()
    sql = (f"SELECT sum(powerconsumed) FROM meterdata "
           f"WHERE regionid = 5 AND ts = '{day}'")
    rows: List[Tuple] = []
    data: Dict[str, Any] = {}

    scan = lab.scan_session.execute(sql, QueryOptions(use_index=False))
    reference = scan.rows[0][0]

    for case in INTERVAL_CASES:
        session = lab.dgf_session(case)
        pre = session.execute(sql, QueryOptions(index_name="dgf_idx"))
        nopre = session.execute(sql, QueryOptions(
            index_name="dgf_idx", dgf_use_precompute=False))
        _check_close(reference, pre.rows[0][0], f"fig17 {case} precompute")
        _check_close(reference, nopre.rows[0][0],
                     f"fig17 {case} noprecompute")
        rows.append((case, "DGF-precompute",
                     round(pre.stats.simulated_seconds, 1),
                     pre.stats.records_read))
        rows.append((case, "DGF-noprecompute",
                     round(nopre.stats.simulated_seconds, 1),
                     nopre.stats.records_read))
        data[f"{case}/pre"] = _series(pre, scan.stats.records_matched)
        data[f"{case}/nopre"] = _series(nopre, scan.stats.records_matched)
        if pre.stats.records_read > nopre.stats.records_read:
            raise BenchmarkError(
                "fig17: precompute read more data than noprecompute")

    compact = lab.compact_session.execute(sql,
                                          QueryOptions(index_name="cmp_idx"))
    _check_close(reference, compact.rows[0][0], "fig17 compact")
    rows.append(("-", "Compact-2D",
                 round(compact.stats.simulated_seconds, 1),
                 compact.stats.records_read))
    data["compact"] = _series(compact, scan.stats.records_matched)
    return ExpResult(
        exp_id="fig17",
        title="Partial-specified query (regionId + time only)",
        headers=["interval", "system", "total s", "records read"],
        rows=rows,
        notes=("The missing userId dimension is completed from the min/max "
               "standardized values in the key-value store.  Paper: DGF is "
               "2-4.6x faster than Compact; precompute saves the inner "
               "region's reads."),
        data=data)


# ------------------------------------------------ Tables 5-6 + Figure 18
def tpch_q6(lab: TpchLab) -> ExpResult:
    """TPC-H Q6: build costs, records read, query times."""
    sql = lab.q6()
    rows: List[Tuple] = []
    data: Dict[str, Any] = {}

    scan = lab.scan_session.execute(sql, QueryOptions(use_index=False))
    reference = scan.rows[0][0]
    accurate = scan.stats.records_matched
    total_records = scan.stats.records_read

    dgf_report = lab.dgf_session.build_report("lineitem", "dgf_q6")
    cmp2_report = lab.compact_session.build_report("lineitem", "cmp2")
    cmp3_report = lab.compact_session.build_report("lineitem", "cmp3")

    dgf = lab.dgf_session.execute(sql, QueryOptions(index_name="dgf_q6"))
    cmp2 = lab.compact_session.execute(sql, QueryOptions(index_name="cmp2"))
    cmp3 = lab.compact_session.execute(sql, QueryOptions(index_name="cmp3"))
    _check_close(reference, dgf.rows[0][0], "fig18 dgf", tolerance=1e-9)
    _check_close(reference, cmp2.rows[0][0], "fig18 cmp2", tolerance=1e-9)
    _check_close(reference, cmp3.rows[0][0], "fig18 cmp3", tolerance=1e-9)

    for label, report, result in (
            ("DGFIndex", dgf_report, dgf),
            ("Compact-2D", cmp2_report, cmp2),
            ("Compact-3D", cmp3_report, cmp3)):
        rows.append((label, human_bytes(report.index_size_bytes),
                     round(report.build_time.total, 1),
                     result.stats.records_read,
                     round(result.stats.time.read_index_and_other, 1),
                     round(result.stats.time.read_data_and_process, 1),
                     round(result.stats.simulated_seconds, 1)))
        data[label] = {"size": report.index_size_bytes,
                       "build_seconds": report.build_time.total,
                       "records_read": result.stats.records_read,
                       "seconds": result.stats.simulated_seconds}
    rows.append(("ScanTable", "-", 0.0, scan.stats.records_read, 0.0,
                 round(scan.stats.simulated_seconds, 1),
                 round(scan.stats.simulated_seconds, 1)))
    data["ScanTable"] = {"records_read": scan.stats.records_read,
                         "seconds": scan.stats.simulated_seconds}
    # Scanning the *RCFile* copy is the fair baseline for the Compact rows
    # (the paper's "slower than scanning the whole table" claim).
    rc_scan = lab.compact_session.execute(sql, QueryOptions(use_index=False))
    _check_close(reference, rc_scan.rows[0][0], "fig18 rc-scan",
                 tolerance=1e-9)
    rows.append(("ScanTable (RCFile)", "-", 0.0, rc_scan.stats.records_read,
                 0.0, round(rc_scan.stats.simulated_seconds, 1),
                 round(rc_scan.stats.simulated_seconds, 1)))
    data["ScanTable-RCFile"] = {
        "records_read": rc_scan.stats.records_read,
        "seconds": rc_scan.stats.simulated_seconds}
    data["accurate"] = accurate
    data["total_records"] = total_records

    # The paper's headline claims on TPC-H:
    if not data["DGFIndex"]["records_read"] < 0.2 * total_records:
        raise BenchmarkError("tpch: DGF did not prune lineitem reads")
    for label in ("Compact-2D", "Compact-3D"):
        if data[label]["records_read"] < total_records:
            raise BenchmarkError(
                f"tpch: {label} filtered splits on evenly-scattered data "
                "(the paper observes it cannot)")
    return ExpResult(
        exp_id="table5-6+fig18",
        title="TPC-H Q6: index sizes, records read, query times",
        headers=["system", "index size", "build s", "records read",
                 "index+other s", "data+process s", "total s"],
        rows=rows,
        notes=(f"accurate = {accurate} of {total_records} lineitems "
               "(~2% selectivity).  Paper: both Compact indexes read the "
               "whole table (slower than scanning), DGF reads ~2% and is "
               "~25x faster."),
        data=data)


# ------------------------------------------------ parallel engine speedup
def parallel_speedup(lab: MeterLab, workers: int = 4,
                     rounds: int = 3) -> ExpResult:
    """Wall-clock of the Fig. 8 aggregation under both engine modes.

    This measures the *reproduction's own* runtime, not simulated paper
    seconds: a full-scan aggregation (the heaviest map phase in the meter
    workload) is executed on a sequential session and on a thread-pool
    session, ``rounds`` times each, and the minimum wall time per mode is
    reported.  Rows must be identical — the parallel engine is only
    interesting because it changes nothing but elapsed time.  With
    CPython's GIL the pool mostly overlaps bookkeeping, so the honest
    claim (and the asserted one in ``benchmarks/test_parallel_speedup.py``)
    is "no slower", not a core-count speedup.
    """
    import time as _time

    from repro.mapreduce.cluster import ExecutionConfig

    sql = lab.query_sql("agg", 0.12)
    options = QueryOptions(use_index=False)
    modes = [("sequential", None),
             (f"parallel({workers})",
              ExecutionConfig(max_workers=workers))]
    timings: Dict[str, float] = {}
    answers: Dict[str, Any] = {}
    for label, execution in modes:
        session = lab.session_with_execution(execution)
        best = float("inf")
        for _ in range(rounds):
            started = _time.perf_counter()
            result = session.execute(sql, options)
            best = min(best, _time.perf_counter() - started)
        timings[label] = best
        answers[label] = result.rows
    sequential_label = modes[0][0]
    parallel_label = modes[1][0]
    _check_close(answers[sequential_label][0][0],
                 answers[parallel_label][0][0],
                 "parallel_speedup: engines disagree")
    speedup = timings[sequential_label] / timings[parallel_label]
    rows = [(label, round(seconds * 1000.0, 1),
             round(timings[sequential_label] / seconds, 2))
            for label, seconds in timings.items()]
    return ExpResult(
        exp_id="parallel-speedup",
        title="Real engine wall-clock: sequential vs thread pool",
        headers=["mode", "best wall ms", "speedup vs sequential"],
        rows=rows,
        notes=(f"min of {rounds} rounds; identical rows asserted; "
               "simulated paper seconds are unaffected by engine mode."),
        data={"timings": dict(timings), "speedup": speedup,
              "workers": workers})


# --------------------------------------------- vectorized engine speedup
def _scan_pipeline_timings(session, sql: str, rounds: int
                           ) -> Tuple[float, float]:
    """Best wall-clock of the map-side scan pipeline, row vs vector, on
    identical pre-decoded inputs.

    This isolates the per-record CPU hot path (filter evaluation +
    aggregate accumulation + map-side combine) that vectorization
    replaces with batch kernels: the row side runs the *actual* job
    mapper and combiner from :func:`repro.hive.exec.build_job` over the
    task's parsed rows, the vector side runs the *actual*
    :meth:`VectorSelectPlan.consume_batches` over the task's decoded
    batches.  Decode/parse cost is excluded from both sides symmetrically
    (rows pre-parsed, batches pre-built and warmed), so the ratio is the
    HAIL-style per-record pipeline win, independent of storage decoding.
    The two pipelines' map outputs are asserted identical before timing.
    """
    import time as _time

    from repro import vector
    from repro.hive import exec as hexec
    from repro.hive import formats
    from repro.hiveql import parse
    from repro.mapreduce.counters import Counters
    from repro.mapreduce.engine import MapReduceEngine
    from repro.mapreduce.job import TaskContext

    analysis = hexec.analyze(session.metastore, parse(sql))
    fmt = formats.input_format_for(analysis.table, columns=None)
    splits = fmt.get_splits(session.fs, [analysis.table.data_location])
    rows = [value for split in splits
            for _key, value in fmt.read_split(session.fs, split)]
    plan = vector.compile_select(analysis, fmt)
    if plan is None:
        raise BenchmarkError("vectorized_speedup: scan not vectorizable")
    batches = [batch for split in splits
               for batch in plan.reader.read_batches(session.fs, split)]
    job = hexec.build_job(analysis, splits, fmt, "vector-bench")

    def row_side():
        emits: List[Tuple[Any, Any]] = []
        counters = Counters()
        ctx = TaskContext(0, session.fs, counters,
                          lambda k, v: emits.append((k, v)))
        mapper = job.mapper
        for row in rows:
            mapper(None, row, ctx)
        if job.reducer is not None and job.combiner is not None:
            return MapReduceEngine._combine(job, emits, counters)
        return emits

    def vec_side():
        return plan.consume_batches(batches).emits

    if row_side() != vec_side():  # also warms lazy columns/arrays
        raise BenchmarkError(
            "vectorized_speedup: pipelines emit different map output")
    row_best = vec_best = float("inf")
    for _ in range(rounds):  # interleaved so load spikes hit both sides
        started = _time.perf_counter()
        row_side()
        row_best = min(row_best, _time.perf_counter() - started)
        started = _time.perf_counter()
        vec_side()
        vec_best = min(vec_best, _time.perf_counter() - started)
    return row_best, vec_best


def vectorized_speedup(meter_lab: MeterLab, tpch_lab: TpchLab,
                       rounds: int = 5) -> ExpResult:
    """Wall-clock win of ``ExecutionConfig(vectorized=True)`` on the
    Fig. 8–10 aggregation and TPC-H Q6 (Fig. 18) scan workloads.

    Like :func:`parallel_speedup` this measures the *reproduction's own*
    runtime (simulated paper seconds are byte-identical by the
    differential-harness guarantee).  Two quantities per workload:

    * ``end_to_end`` — full ``session.execute`` wall-clock, row engine vs
      vectorized engine, interleaved rounds, best of each.  Includes
      parsing/planning/decode/shuffle/trace overheads common to both.
    * ``scan_pipeline`` — the per-record hot path alone (see
      :func:`_scan_pipeline_timings`), which is what the vector engine
      actually replaces and where the 10x-class win is asserted by
      ``benchmarks/test_vectorized_speedup.py``.

    Rows *and* full ``QueryStats`` are asserted identical between the two
    engines on every workload before any timing is reported.
    """
    import time as _time

    from repro.mapreduce.cluster import ExecutionConfig
    from repro.vector import runtime as vector_runtime

    if vector_runtime.numpy_module() is None:
        return ExpResult(
            exp_id="vectorized-speedup",
            title="Real engine wall-clock: row vs vectorized",
            headers=["workload"], rows=[],
            notes=("NumPy unavailable (or REPRO_VECTOR_DISABLE set): the "
                   "vectorized engine is disabled, nothing to measure."),
            data={"workloads": {}, "rounds": rounds})

    options = QueryOptions(use_index=False)
    meter_row = meter_lab.session_with_execution(None)
    meter_vec = meter_lab.session_with_execution(
        ExecutionConfig(vectorized=True))
    tpch_row = tpch_lab.session_with_execution(None)
    tpch_vec = tpch_lab.session_with_execution(
        ExecutionConfig(vectorized=True))
    workloads = [(f"meter agg {_sel_label(sel)}", meter_row, meter_vec,
                  meter_lab.query_sql("agg", sel))
                 for sel in ("point", 0.05, 0.12)]
    workloads.append(("tpch q6", tpch_row, tpch_vec, tpch_lab.q6()))

    table_rows: List[Sequence[Any]] = []
    data: Dict[str, Any] = {}
    for label, row_session, vec_session, sql in workloads:
        row_result = row_session.execute(sql, options)  # also warms
        vec_result = vec_session.execute(sql, options)
        if row_result.rows != vec_result.rows:
            raise BenchmarkError(f"vectorized_speedup: rows differ ({label})")
        if row_result.stats != vec_result.stats:
            raise BenchmarkError(f"vectorized_speedup: stats differ ({label})")
        row_best = vec_best = float("inf")
        for _ in range(rounds):
            started = _time.perf_counter()
            row_session.execute(sql, options)
            row_best = min(row_best, _time.perf_counter() - started)
            started = _time.perf_counter()
            vec_session.execute(sql, options)
            vec_best = min(vec_best, _time.perf_counter() - started)
        pipe_row, pipe_vec = _scan_pipeline_timings(row_session, sql, rounds)
        data[label] = {
            "end_to_end": {"row_s": row_best, "vectorized_s": vec_best,
                           "speedup": row_best / vec_best},
            "scan_pipeline": {"row_s": pipe_row, "vectorized_s": pipe_vec,
                              "speedup": pipe_row / pipe_vec},
        }
        table_rows.append(
            (label, round(row_best * 1000.0, 1), round(vec_best * 1000.0, 1),
             round(row_best / vec_best, 2), round(pipe_row * 1000.0, 1),
             round(pipe_vec * 1000.0, 2), round(pipe_row / pipe_vec, 2)))
    return ExpResult(
        exp_id="vectorized-speedup",
        title="Real engine wall-clock: row vs vectorized",
        headers=["workload", "e2e row ms", "e2e vec ms", "e2e speedup",
                 "pipeline row ms", "pipeline vec ms", "pipeline speedup"],
        rows=table_rows,
        notes=(f"min of {rounds} interleaved rounds; identical rows and "
               "QueryStats asserted per workload; 'pipeline' is the "
               "map-side filter+aggregate hot path on pre-decoded "
               "inputs."),
        data={"workloads": data, "rounds": rounds})


def replica_fleet(lab: MeterLab) -> ExpResult:
    """Per-layout rerun of the Fig. 8–16 query workloads over a
    multi-layout replica fleet (HAIL-style; see docs/replicas.md).

    One DGF session carries three physical organizations of the same
    index: the ``medium``-interval primary, a ``fine`` layout at the
    ``small`` interval, and a deliberately coarse layout
    (``num_users/5``-wide cells, 5-day time buckets).  Every Fig. 8–10
    aggregation, Fig. 11–13 GROUP BY and Fig. 14–16 join workload runs
    once forced onto each layout (``QueryOptions(dgf_layout=...)``) and
    once routed by the cost model; results are cross-checked against a
    full scan before any timing is reported.

    The paper-shape claims asserted by ``benchmarks/test_replica_speedup``:
    the best layout beats the worst by >= 2x in simulated seconds on at
    least one workload, no single layout is best everywhere (fine grids
    win selective queries but pay more index probes on wide ones — HAIL's
    motivation), and the router never picks the worst layout.
    """
    from repro.hdfs.layout import PRIMARY_LAYOUT

    session = lab.fresh_dgf_session("medium")
    start = lab.generator.config.start_date
    fleet = {
        "fine": dict(grid={"userid": f"0_{lab.interval_size('small')}",
                           "regionid": "0_1", "ts": f"{start}_1d"}),
        "coarse": dict(grid={"userid":
                             f"0_{max(1, lab.config.num_users // 5)}",
                             "regionid": "0_1", "ts": f"{start}_5d"}),
    }
    for name, spec in fleet.items():
        session.add_layout("meterdata", "dgf_idx", name, **spec)
    layouts = [PRIMARY_LAYOUT] + sorted(fleet)

    table_rows: List[Sequence[Any]] = []
    workloads: Dict[str, Any] = {}
    for kind in ("agg", "groupby", "join"):
        for selectivity in SELECTIVITIES:
            label = f"{kind} {_sel_label(selectivity)}"
            sql = lab.query_sql(kind, selectivity)
            scan = lab.scan_session.execute(sql,
                                            QueryOptions(use_index=False))
            reference = _reference_value(scan, kind)

            seconds: Dict[str, float] = {}
            records: Dict[str, int] = {}
            for layout in layouts:
                result = session.execute(sql, QueryOptions(
                    index_name="dgf_idx", dgf_layout=layout))
                _check_close(reference, _reference_value(result, kind),
                             f"replica-fleet {label} layout={layout}")
                seconds[layout] = result.stats.simulated_seconds
                records[layout] = result.stats.records_read
            routed = session.execute(sql,
                                     QueryOptions(index_name="dgf_idx"))
            _check_close(reference, _reference_value(routed, kind),
                         f"replica-fleet {label} routed")
            chosen = routed.plan.access.layout

            best = min(layouts, key=seconds.get)
            worst = max(layouts, key=seconds.get)
            speedup = seconds[worst] / seconds[best]
            workloads[label] = {
                "layouts": {name: {"seconds": seconds[name],
                                   "records_read": records[name]}
                            for name in layouts},
                "routed": {"chosen": chosen,
                           "seconds": routed.stats.simulated_seconds,
                           "records_read": routed.stats.records_read},
                "best": best, "worst": worst,
                "speedup_best_over_worst": speedup,
            }
            table_rows.append(
                (label,) + tuple(round(seconds[name], 1)
                                 for name in layouts)
                + (round(routed.stats.simulated_seconds, 1), chosen,
                   best, round(speedup, 2)))

    max_speedup = max(w["speedup_best_over_worst"]
                      for w in workloads.values())
    return ExpResult(
        exp_id="replica-fleet",
        title="Fig. 8-16 reruns per replica-fleet layout",
        headers=["workload"] + [f"{name} s" for name in layouts]
        + ["routed s", "routed choice", "best", "best/worst"],
        rows=table_rows,
        notes=("Simulated paper-scale seconds per forced layout plus the "
               "cost-based router's pick; identical query results "
               "cross-checked against a full scan on every cell.  No "
               "layout is best everywhere: fine grids win selective "
               "queries, the primary wins wide ones, and the coarse "
               "layout demonstrates what routing must avoid "
               f"(up to {max_speedup:.1f}x)."),
        data={"layouts": layouts, "workloads": workloads,
              "max_speedup": max_speedup})


def advisor_divergent(lab: MeterLab) -> ExpResult:
    """Workload-driven divergent advisor, end to end (docs/advisor.md).

    A fresh ``medium`` DGF session observes a mixed workload through the
    query log — frequent point lookups plus broad 5%/12% range
    aggregations — then ``Advisor.report()`` clusters the log,
    ``apply()`` builds one specialist replica layout per cluster, and
    the same workload reruns three ways: cost-routed over the advised
    fleet, and pinned uniformly to the primary and to each advised
    layout in turn.  Every result is cross-checked against a full table
    scan before any timing is trusted.

    The claim recorded by ``benchmarks/test_advisor_speedup``: the
    routed divergent fleet beats the **best** single uniform
    configuration by >= 1.3x on total (weighted) simulated seconds, and
    every query routes to exactly the specialist its report names —
    the router's cost formula *is* the advisor's what-if formula, so
    the layouts it builds are the choices it makes.
    """
    from repro.hdfs.layout import PRIMARY_LAYOUT
    from repro.service.advisor import Advisor

    session = lab.fresh_dgf_session("large")
    advisor = Advisor(session, "meterdata", "dgf_idx", max_layouts=2)
    advisor.observe()

    # The smart-grid mix with genuinely conflicting optima, observed
    # through a primary whose coarse ``large`` interval suits neither
    # side of it: per-user billing histories are slop-bound (cost grows
    # with the userid cell width, so they want a very fine userid grid)
    # while the 12%-selectivity regional GROUP BY is probe- and
    # boundary-bound (it wants moderate cells in every dimension).
    # Weights are query frequencies — histories dominate by count, the
    # wide report by bytes.
    def user_history(user: int) -> str:
        return (f"SELECT ts, sum(powerconsumed) FROM meterdata "
                f"WHERE userid = {user} GROUP BY ts")

    third = lab.config.num_users // 3
    workload = [(f"user {user} history", user_history(user),
                 "groupby", 15)
                for user in (42, third // 2, third, 2 * third)]
    workload.append(("groupby 12%", lab.query_sql("groupby", 0.12),
                     "groupby", 2))
    for _label, sql, _kind, weight in workload:
        for _ in range(weight):
            session.execute(sql, QueryOptions(index_name="dgf_idx"))
    report = advisor.report()
    built = advisor.apply(report)
    uniforms = [PRIMARY_LAYOUT] + built

    table_rows: List[Sequence[Any]] = []
    per_query: Dict[str, Any] = {}
    routed_total = 0.0
    uniform_totals = {name: 0.0 for name in uniforms}
    for label, sql, kind, weight in workload:
        scan = lab.scan_session.execute(sql, QueryOptions(use_index=False))
        reference = _reference_value(scan, kind)

        routed = session.execute(sql, QueryOptions(index_name="dgf_idx"))
        _check_close(reference, _reference_value(routed, kind),
                     f"advisor-divergent {label} routed")
        signature = advisor._signatures(advisor.entries()[-1:])[0]
        specialist = report.specialist_for(signature)
        chosen = routed.plan.access.layout
        routed_total += weight * routed.stats.simulated_seconds

        seconds: Dict[str, float] = {}
        for name in uniforms:
            forced = session.execute(sql, QueryOptions(
                index_name="dgf_idx", dgf_layout=name))
            _check_close(reference, _reference_value(forced, kind),
                         f"advisor-divergent {label} layout={name}")
            seconds[name] = forced.stats.simulated_seconds
            uniform_totals[name] += weight * seconds[name]

        per_query[label] = {
            "weight": weight, "chosen": chosen, "specialist": specialist,
            "routed_seconds": routed.stats.simulated_seconds,
            "uniform_seconds": seconds,
        }
        table_rows.append(
            (label, weight) + tuple(round(seconds[name], 1)
                                    for name in uniforms)
            + (round(routed.stats.simulated_seconds, 1), chosen,
               specialist))

    best_uniform = min(uniform_totals, key=uniform_totals.get)
    speedup = uniform_totals[best_uniform] / routed_total
    grids = {layout.name: layout.advice.cell_counts
             for layout in report.layouts}
    return ExpResult(
        exp_id="advisor-divergent",
        title="Divergent advisor fleet vs best uniform configuration",
        headers=["workload", "weight"] + [f"{name} s" for name in uniforms]
        + ["routed s", "routed choice", "specialist"],
        rows=table_rows,
        notes=(f"Advisor built {len(built)} specialist layout(s) "
               f"{grids}; weighted workload total routed over them is "
               f"{routed_total:.1f}s vs {uniform_totals[best_uniform]:.1f}s "
               f"on the best uniform ({best_uniform}): "
               f"{speedup:.2f}x.  Results scan-checked per query."),
        data={"uniforms": uniforms, "built": built, "grids": grids,
              "queries": per_query, "uniform_totals": uniform_totals,
              "routed_total": routed_total, "best_uniform": best_uniform,
              "speedup_vs_best_uniform": speedup,
              "predicted_speedup": report.predicted_speedup,
              "report": report.to_dict()})


# ----------------------------------------------------------------- ablations
def ablation_advisor(lab: MeterLab) -> ExpResult:
    """Splitting-policy advisor vs the fixed L/M/S policies."""
    from repro.core.dgf.advisor import PolicyAdvisor
    from repro.data.meter import METER_SCHEMA

    advisor = PolicyAdvisor(
        METER_SCHEMA, ["userid", "regionid", "ts"],
        # boundary over-read must be costed at paper-scale record volume
        records_per_unit_volume=len(lab.rows) * lab.data_scale)
    history = [lab.intervals_for(s) for s in (0.05, 0.12, 0.05)]
    sample = lab.rows[:: max(1, len(lab.rows) // 2000)]
    advice = advisor.advise(sample, history)
    properties = advice.properties

    session = lab._new_session()
    lab._load_meter(session, "TEXTFILE")
    props_sql = ", ".join(f"'{k}'='{v}'" for k, v in properties.items())
    session.execute(
        "CREATE INDEX dgf_adv ON TABLE meterdata(userid, regionid, ts) "
        f"AS 'dgf' IDXPROPERTIES ({props_sql}, "
        "'precompute'='sum(powerconsumed),count(*)')")

    rows: List[Tuple] = []
    data: Dict[str, Any] = {"policy": properties,
                            "advice": advice.to_dict()}
    for selectivity in (0.05, 0.12):
        label = _sel_label(selectivity)
        sql = lab.query_sql("agg", selectivity)
        advised = session.execute(sql, QueryOptions(index_name="dgf_adv"))
        rows.append((label, "DGF-advisor",
                     round(advised.stats.simulated_seconds, 1),
                     advised.stats.records_read))
        data[f"{label}/advisor"] = _series(advised, -1)
        for case in INTERVAL_CASES:
            result = lab.dgf_session(case).execute(
                sql, QueryOptions(index_name="dgf_idx"))
            rows.append((label, f"DGF-{case[0].upper()}",
                         round(result.stats.simulated_seconds, 1),
                         result.stats.records_read))
            data[f"{label}/{case}"] = _series(result, -1)
    return ExpResult(
        exp_id="ablation-advisor",
        title="Splitting-policy advisor vs fixed L/M/S policies",
        headers=["selectivity", "policy", "total s", "records read"],
        rows=rows,
        notes=f"Advisor chose: {properties} (paper future work, Section 8).",
        data=data)


def ablation_formats(lab: MeterLab) -> ExpResult:
    """DGFIndex over an RCFile base table (the paper: 'easy to extend')."""
    session = lab._new_session()
    lab._load_meter(session, "RCFILE")
    interval = lab.interval_size("medium")
    session.execute(
        "CREATE INDEX dgf_rc ON TABLE meterdata(userid, regionid, ts) "
        f"AS 'dgf' IDXPROPERTIES ('userid'='0_{interval}', "
        f"'regionid'='0_1', 'ts'='{lab.generator.config.start_date}_1d', "
        "'precompute'='sum(powerconsumed),count(*)')")
    rows: List[Tuple] = []
    data: Dict[str, Any] = {}
    for selectivity in ("point", 0.05):
        label = _sel_label(selectivity)
        sql = lab.query_sql("agg", selectivity)
        text_result = lab.dgf_session("medium").execute(
            sql, QueryOptions(index_name="dgf_idx"))
        rc_result = session.execute(sql, QueryOptions(index_name="dgf_rc"))
        _check_close(text_result.rows[0][0], rc_result.rows[0][0],
                     f"formats {label}")
        rows.append((label, "TextFile", text_result.stats.records_read,
                     round(text_result.stats.simulated_seconds, 1)))
        rows.append((label, "RCFile", rc_result.stats.records_read,
                     round(rc_result.stats.simulated_seconds, 1)))
        data[label] = {"text": text_result.stats.records_read,
                       "rcfile": rc_result.stats.records_read}
    return ExpResult(
        exp_id="ablation-formats",
        title="DGFIndex over TextFile vs RCFile base tables",
        headers=["selectivity", "base format", "records read", "total s"],
        rows=rows,
        notes="Slices are row-group aligned in RCFile; results identical.",
        data=data)


def partition_explosion(dims: int = 3, values_per_dim: int = 100) -> ExpResult:
    """The paper's NameNode argument: multi-dimensional partitioning
    creates ``values^dims`` directories at 150 bytes of heap each."""
    from repro.hdfs.filesystem import HDFS
    fs = HDFS(num_datanodes=2)
    # Creating 1M real directories is feasible but slow; create one full
    # plane and extrapolate exactly (the memory model is exactly linear).
    for first in range(values_per_dim):
        fs.mkdirs(f"/warehouse/part/a={first}")
    per_dir = 150
    total_dirs = values_per_dim ** dims
    projected = total_dirs * per_dir
    measured_plane = fs.namenode.metadata_memory_bytes()
    rows = [
        (f"{values_per_dim} dirs (1 dim, measured)",
         human_bytes(measured_plane)),
        (f"{total_dirs:,} dirs ({dims} dims, projected)",
         human_bytes(projected)),
    ]
    return ExpResult(
        exp_id="partition-explosion",
        title="NameNode memory of multi-dimensional partitioning",
        headers=["scenario", "NameNode heap"],
        rows=rows,
        notes=("Paper Section 2.2: 3 dimensions x 100 values = 1M "
               "directories = 143MB of NameNode memory, before files and "
               "blocks."),
        data={"projected_bytes": projected})
