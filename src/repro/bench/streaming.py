"""Multi-tenant streaming-traffic scenarios over the delta subsystem.

Each scenario replays one archetypal smart-grid traffic shape against a
:class:`~repro.service.queryservice.QueryService` whose table carries a
DGF index and an attached streaming-delta binding:

* ``steady_ingest``    — tenants trickle small insert batches around the
  clock while monitoring dashboards poll aggregate windows;
* ``billing_scan``     — month-end billing sweeps the whole grid with
  heavy aggregations while a thin residue of late ops is still resident;
* ``outage_backfill``  — a collector outage ends and the missed window
  arrives late as a burst of upserts over historical cells;
* ``tariff_hotspot``   — a tariff correction rewrites a handful of hot
  cells over and over (upserts + tombstones concentrated on few GFUs).

Every scenario measures the *reproduction's own* wall-clock for its
query battery twice — once with the delta resident (merge-on-read) and
once after the compactor folded it into the base — and reports the
resident/compacted latency overhead.  Row content is asserted identical
between the two states first (the DualTable contract: base+delta is a
physical layout, never a logical change), so the timings compare equal
answers.  With ``chaos=True`` the whole scenario — ingest, queries,
compaction — runs under a seeded :class:`~repro.faults.FaultPlan` and
the injection/recovery registries are recorded per scenario.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.experiments import ExpResult
from repro.delta import Compactor
from repro.errors import BenchmarkError
from repro.faults import FaultInjector, FaultPlan
from repro.hive.session import HiveSession
from repro.mapreduce.cluster import ExecutionConfig
from repro.service.queryservice import QueryService

TABLE = "meterstream"
INDEX = "idxstream"
KEY_COLUMNS = ("userid", "ts")

#: base grid: 60 meters x 6 collection slots (userid cells 0..6 wide 10,
#: ts cells wide 2 — the test-suite policy at ~3x the row volume).
NUM_USERS = 60
NUM_SLOTS = 6

DDL = (f"CREATE TABLE {TABLE} (userid bigint, regionid int, ts bigint, "
       "powerconsumed double) STORED AS TEXTFILE")
INDEX_SQL = (f"CREATE INDEX {INDEX} ON TABLE {TABLE}(userid, ts) AS 'dgf' "
             "IDXPROPERTIES ('userid'='0_10', 'ts'='100_2', "
             "'precompute'='sum(powerconsumed),count(*)')")


def _power(user: int, slot: int) -> float:
    """Exact binary fractions so folded aggregates are bit-stable."""
    return ((user * 7 + slot) % 640) / 64.0


def base_rows() -> List[Tuple]:
    return [(u, u % 4, 100 + t, _power(u, t))
            for u in range(1, NUM_USERS + 1) for t in range(NUM_SLOTS)]


# ------------------------------------------------------------- traffic shapes
def _steady_ingest(rng: random.Random) -> List[Tuple[str, Tuple]]:
    """Fresh readings from every tenant for two new collection slots."""
    ops: List[Tuple[str, Tuple]] = []
    for slot in (NUM_SLOTS, NUM_SLOTS + 1):  # new ts labels: grid growth
        users = list(range(1, NUM_USERS + 1))
        rng.shuffle(users)  # arrival order is not key order
        ops.extend(("insert", (u, u % 4, 100 + slot, _power(u, slot)))
                   for u in users)
    return ops


def _billing_scan(rng: random.Random) -> List[Tuple[str, Tuple]]:
    """A thin residue of late corrections right before the billing run."""
    users = rng.sample(range(1, NUM_USERS + 1), 12)
    ops: List[Tuple[str, Tuple]] = [
        ("upsert", (u, u % 4, 100 + rng.randrange(NUM_SLOTS),
                    _power(u, NUM_SLOTS) ))
        for u in users[:8]]
    ops.extend(("delete", (u, 100 + rng.randrange(NUM_SLOTS)))
               for u in users[8:])
    return ops


def _outage_backfill(rng: random.Random) -> List[Tuple[str, Tuple]]:
    """Collectors for two regions come back and re-send a whole slot."""
    outage_slot = NUM_SLOTS // 2
    users = [u for u in range(1, NUM_USERS + 1) if u % 4 in (1, 2)]
    rng.shuffle(users)
    return [("upsert", (u, u % 4, 100 + outage_slot,
                        _power(u, outage_slot) + 8 / 64.0))
            for u in users]


def _tariff_hotspot(rng: random.Random) -> List[Tuple[str, Tuple]]:
    """A tariff correction hammers three hot meters, slot by slot, with
    a final disconnect tombstoning one of them."""
    hot = rng.sample(range(1, NUM_USERS + 1), 3)
    ops: List[Tuple[str, Tuple]] = []
    for _pass in range(4):
        for u in hot:
            slot = rng.randrange(NUM_SLOTS)
            ops.append(("upsert", (u, u % 4, 100 + slot,
                                   _power(u, slot) + _pass / 64.0)))
    ops.extend(("delete", (hot[0], 100 + t)) for t in range(NUM_SLOTS))
    return ops


# ---------------------------------------------------------------- batteries
_MONITORING = (
    "SELECT sum(powerconsumed), count(*) FROM {t} "
    "WHERE userid >= 10 AND userid < 40 AND ts >= 100 AND ts < 108",
    "SELECT count(*) FROM {t} WHERE regionid = 2",
)
_BILLING = (
    "SELECT regionid, sum(powerconsumed), count(*) FROM {t} "
    "WHERE userid >= 0 AND userid < 70 GROUP BY regionid",
    "SELECT avg(powerconsumed) FROM {t} "
    "WHERE userid >= 0 AND userid < 70 AND ts >= 100 AND ts < 110",
)
_BACKFILL = (
    "SELECT sum(powerconsumed), count(*) FROM {t} "
    "WHERE userid >= 0 AND userid < 70 AND ts >= 103 AND ts < 104",
    "SELECT regionid, count(*) FROM {t} "
    "WHERE ts >= 103 AND ts < 104 GROUP BY regionid",
)
_HOTSPOT = (
    "SELECT userid, ts, powerconsumed FROM {t} "
    "WHERE userid >= 0 AND userid < 70 AND powerconsumed >= 9.0 "
    "ORDER BY userid, ts",
    "SELECT count(*) FROM {t}",
)

SCENARIOS: Tuple[Tuple[str, Callable, Tuple[str, ...]], ...] = (
    ("steady_ingest", _steady_ingest, _MONITORING),
    ("billing_scan", _billing_scan, _BILLING),
    ("outage_backfill", _outage_backfill, _BACKFILL),
    ("tariff_hotspot", _tariff_hotspot, _HOTSPOT),
)


# ------------------------------------------------------------------- running
def _battery_seconds(service: QueryService, queries: Sequence[str],
                     rounds: int) -> Tuple[float, List[List[Tuple]]]:
    """Best-of-rounds wall-clock of the whole battery submitted
    concurrently (the multi-tenant read side), plus its row sets."""
    statements = [sql.format(t=TABLE) for sql in queries]
    best = float("inf")
    rows: List[List[Tuple]] = []
    for _ in range(rounds):
        started = time.perf_counter()
        results = service.run_all(statements)
        best = min(best, time.perf_counter() - started)
        rows = [list(r.rows) for r in results]
    return best, rows


def _run_scenario(name: str, traffic: Callable, queries: Sequence[str],
                  plan: Optional[FaultPlan], rounds: int,
                  seed: int, workers: int) -> Dict[str, Any]:
    injector = FaultInjector(plan) if plan is not None else None
    session = HiveSession(num_datanodes=4,
                          execution=ExecutionConfig(max_workers=workers),
                          faults=injector)
    session.fs.block_size = 2048
    session.execute(DDL)
    session.load_rows(TABLE, base_rows())
    session.execute(INDEX_SQL)
    if injector is not None:
        injector.activate_datanode_faults(session.fs)

    ops = traffic(random.Random(seed))
    with QueryService(session, max_workers=workers,
                      queue_depth=max(len(queries), 4)) as service:
        writer = service.streaming_writer(
            TABLE, INDEX, key_columns=list(KEY_COLUMNS), batch_size=16)
        started = time.perf_counter()
        for kind, payload in ops:
            getattr(writer, kind)([payload])
        writer.flush()
        ingest_seconds = time.perf_counter() - started

        binding = session.delta_binding(TABLE)
        resident_ops = binding.resident_ops
        resident_cells = len(binding.resident_cells)
        resident_s, resident_rows = _battery_seconds(service, queries,
                                                     rounds)
        report = Compactor(binding).run()
        compacted_s, compacted_rows = _battery_seconds(service, queries,
                                                       rounds)

    if resident_rows != compacted_rows:
        raise BenchmarkError(
            f"{name}: compaction changed row content — merge-on-read and "
            "the folded base disagree")
    metrics: Dict[str, Any] = {
        "ops": len(ops),
        "ingest_ops_per_s": len(ops) / ingest_seconds,
        "resident_ops": resident_ops,
        "resident_cells": resident_cells,
        "resident_s": resident_s,
        "compacted_s": compacted_s,
        "overhead": resident_s / compacted_s,
        "compaction": {"folded_rows": report.folded_rows,
                       "rewritten_cells": report.rewritten_cells,
                       "suppressed_rows": report.suppressed_rows,
                       "dead_bytes": report.dead_bytes},
    }
    if injector is not None:
        metrics["faults"] = {
            "injected": dict(injector.registry.injected_counts()),
            "recovered": dict(injector.registry.recovery_counts()),
        }
    return metrics


def streaming_scenarios(rounds: int = 3, workers: int = 4,
                        chaos: bool = True, seed: int = 0) -> ExpResult:
    """Replay all four traffic shapes; see the module docstring."""
    plan = FaultPlan(seed=seed, task_crash_rate=0.2,
                     task_straggler_rate=0.15, kv_timeout_rate=0.1,
                     dead_datanodes=(2,)) if chaos else None
    rows: List[Tuple] = []
    data: Dict[str, Any] = {}
    for position, (name, traffic, queries) in enumerate(SCENARIOS):
        metrics = _run_scenario(name, traffic, queries, plan, rounds,
                                seed=seed + position, workers=workers)
        data[name] = metrics
        rows.append((name, metrics["ops"], metrics["resident_ops"],
                     round(metrics["resident_s"] * 1000.0, 1),
                     round(metrics["compacted_s"] * 1000.0, 1),
                     round(metrics["overhead"], 2),
                     metrics["compaction"]["folded_rows"],
                     metrics["compaction"]["rewritten_cells"]))
    return ExpResult(
        exp_id="streaming-scenarios",
        title="Multi-tenant streaming traffic: delta-resident vs compacted",
        headers=["scenario", "ops", "resident", "resident ms",
                 "compacted ms", "overhead", "folded rows",
                 "rewritten cells"],
        rows=rows,
        notes=(f"best of {rounds} concurrent battery rounds per state; "
               "identical rows asserted resident vs compacted"
               + ("; whole scenario under a seeded fault plan"
                  if chaos else "")),
        data={"scenarios": data, "rounds": rounds, "workers": workers,
              "chaos": chaos})
