"""Runs every experiment and renders the EXPERIMENTS.md report."""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.bench import experiments as exps
from repro.bench.lab import (MeterLab, MeterLabConfig, TpchLab,
                             TpchLabConfig)

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in the evaluation of *DGFIndex for
Smart Grid* (Liu et al., VLDB 2014).  All systems run on the simulated
Hadoop/Hive/HBase stack described in DESIGN.md; "seconds" are paper-scale
simulated times produced by the calibrated cost model from *measured*
counters (records, bytes, splits, KV ops), which are reported alongside.
Absolute numbers are not expected to match the paper (different substrate);
the comparisons to check are orderings, flatness/growth trends, and
crossovers — each experiment asserts its paper-shape invariants and fails
if they do not hold.

Scale: meter data {meter_records:,} records standing in for the paper's 11
billion (data_scale {meter_scale:,.0f}); TPC-H lineitem {tpch_records:,}
records for the paper's 4.1 billion.  Regenerate with
`python -m repro.bench`.
"""

FOOTER = """\
## Appendix: paper-vs-measured checklist

| claim (paper) | paper numbers | reproduction | holds? |
|---|---|---|---|
| Fig. 3: HDFS write throughput dominates DBMS-X; an index makes DBMS-X worse | ~2-4 / 8-16 / 32-64 MB/s (log2 axis) | same ordering, same bands | yes (asserted) |
| Table 2: 3-D Compact index table ~ base table size; 2-D small; DGF sizes tiny, L < M < S; DGF build slower (shuffle) | 821GB / 7MB / 0.94-13MB; 23350s vs 25816s | ordering + explosion reproduced (absolute ratios compress at laptop scale: ~3300 records/GFU in the paper vs tens here) | yes (asserted) |
| Figs. 8-10 / Table 3: DGF aggregation 2-50x faster than Compact & HadoopDB, nearly flat vs selectivity; point queries read a whole GFU (>> accurate) | DGF ~25-42s flat; Compact 73->1700s; HadoopDB 60->1500s; scan ~1950s | DGF ~20-70s flat; Compact 211->965s; HadoopDB 52->2194s; scan ~1875s | yes (asserted) |
| Figs. 11-13 / Table 4: non-aggregation (GROUP BY) DGF 2-5x faster; reads L >= M >= S >= accurate; index-read time grows as intervals shrink | DGF reads 572-681M vs accurate 569M at 5% | same ordering; index-read growth visible though compressed (scaled-down grid has fewer GFUs) | yes (asserted) |
| Figs. 14-16: JOIN keeps the same ordering, plus build side + output write | DGF fastest at every selectivity | same | yes (asserted) |
| Fig. 17: partial-specified query completed from stored min/max; DGF 2-4.6x faster than Compact; precompute removes inner-region reads | 2-4.6x | precompute reads 0 records; DGF beats Compact at every interval size | yes (asserted) |
| Tables 5-6 / Fig. 18: on evenly-scattered TPC-H both Compact indexes read the whole table (no better than scanning); DGF reads ~2% and is ~25x faster | 85M of 4.1B read; ~25x | every record read by both Compact variants; DGF reads ~1-2%, ~18-20x faster | yes (asserted) |
| Sec. 2.2: 3-dim partitioning with 100 values each -> 1M directories -> 143MB NameNode heap | 143MB | 143.1MB (measured model, exact) | yes |

Known divergences (documented in DESIGN.md): slice byte ranges are
half-open; partition values are also stored in row data; date intervals
are day-granularity; the simulated "point" query selects one of thousands
of users rather than one of 14 million, so *every* system's point-query
time is inflated by the same factor (orderings unaffected).
"""


def run_all(meter_config: Optional[MeterLabConfig] = None,
            tpch_config: Optional[TpchLabConfig] = None,
            verbose: bool = True) -> str:
    """Run every experiment; return the full markdown report."""
    started = time.time()
    lab = MeterLab(meter_config or MeterLabConfig())
    tpch = TpchLab(tpch_config or TpchLabConfig())
    sections: List[str] = [HEADER.format(
        meter_records=len(lab.rows), meter_scale=lab.data_scale,
        tpch_records=len(tpch.rows))]

    plan = [
        ("Figure 3", lambda: exps.fig3_write_throughput()),
        ("Table 2", lambda: exps.table2_index_build(lab)),
        ("Figures 8-10 + Table 3", lambda: exps.aggregation_queries(lab)),
        ("Figures 11-13 + Table 4", lambda: exps.groupby_queries(lab)),
        ("Figures 14-16", lambda: exps.join_queries(lab)),
        ("Figure 17", lambda: exps.partial_query(lab)),
        ("Tables 5-6 + Figure 18", lambda: exps.tpch_q6(tpch)),
        ("Ablation: parallel engine speedup",
         lambda: exps.parallel_speedup(lab)),
        ("Ablation: policy advisor", lambda: exps.ablation_advisor(lab)),
        ("Ablation: vectorized engine speedup",
         lambda: exps.vectorized_speedup(lab, tpch)),
        ("Ablation: replica-fleet layouts",
         lambda: exps.replica_fleet(lab)),
        ("Ablation: divergent advisor fleet",
         lambda: exps.advisor_divergent(lab)),
        ("Ablation: base formats", lambda: exps.ablation_formats(lab)),
        ("Partition explosion", lambda: exps.partition_explosion()),
    ]
    for label, runner in plan:
        if verbose:
            print(f"[{time.time() - started:7.1f}s] running {label} ...",
                  flush=True)
        result = runner()
        sections.append(f"## {label}\n\n{result.markdown()}\n")
    sections.append(FOOTER)
    if verbose:
        print(f"[{time.time() - started:7.1f}s] done", flush=True)
    return "\n".join(sections)


#: reference query shapes traced by :func:`collect_reference_traces`.
REFERENCE_TRACE_QUERIES = (
    ("agg-5pct", "agg", 0.05),
    ("agg-point", "agg", "point"),
    ("groupby-5pct", "groupby", 0.05),
)


def collect_reference_traces(lab: MeterLab,
                             case: str = "medium") -> Dict[str, Any]:
    """Trace the paper's reference MDRQs on a DGF-indexed session.

    Returns a JSON-able document (written as ``BENCH_TRACES.json`` by
    ``python -m repro.bench``) holding, per query: the SQL, the full
    versioned trace document (schema ``dgf-repro/trace``, see
    docs/observability.md) and the headline stats — plus the session's
    metrics snapshot.  Wall times are zeroed so the artifact is
    deterministic across hosts and worker counts.
    """
    from repro.obs.trace import validate_trace
    session = lab.dgf_session(case)
    traces: List[Dict[str, Any]] = []
    for label, kind, selectivity in REFERENCE_TRACE_QUERIES:
        sql = lab.query_sql(kind, selectivity)
        result = session.execute(sql)
        document = result.trace.normalized()
        validate_trace(document)
        traces.append({
            "label": label,
            "sql": sql,
            "trace": document,
            "stats": {
                "records_read": result.stats.records_read,
                "bytes_read": result.stats.bytes_read,
                "splits_processed": result.stats.splits_processed,
                "index_used": result.stats.index_used,
                "simulated_seconds": result.stats.simulated_seconds,
            },
        })
    return {"case": case, "traces": traces,
            "metrics": session.metrics.snapshot()}
