"""Hierarchical GFU aggregation pyramid (k²-tree-style pre-aggregation).

Makes fine grid granularity free at query time: the aggregation path
answers an inner region of N cells from O(polylog N) pyramid nodes
instead of N flat header probes, with byte-identical results, stats and
normalized traces.  See ``docs/pyramid.md``.
"""

from repro.pyramid.build import (DEFAULT_FANOUT, PYRAMID_STATE_KEY,
                                 cell_coords, demote_cells, drop_pyramid,
                                 fold_children, levels_for_extent,
                                 pyramid_fanout, pyramid_levels,
                                 pyramid_state, pyramid_store,
                                 rebuild_pyramid, refresh_cells,
                                 storage_index_name)
from repro.pyramid.decompose import (PyramidCover, cover_box,
                                     decompose_region, resolve_cover)
from repro.pyramid.store import (PYRAMID_PREFIX, NodeId, PyramidNode,
                                 PyramidStore, node_key, parse_node_key)

__all__ = [
    "DEFAULT_FANOUT", "PYRAMID_PREFIX", "PYRAMID_STATE_KEY", "NodeId",
    "PyramidCover", "PyramidNode", "PyramidStore", "cell_coords",
    "cover_box", "decompose_region", "demote_cells", "drop_pyramid",
    "fold_children", "levels_for_extent", "node_key", "parse_node_key",
    "pyramid_fanout", "pyramid_levels", "pyramid_state", "pyramid_store",
    "rebuild_pyramid", "refresh_cells", "resolve_cover",
    "storage_index_name",
]
