"""KV persistence of the GFU aggregation pyramid.

A pyramid is a multi-resolution tree of additive header aggregates over
the GFU grid (k²-tree style, after *Aggregated 2D Range Queries on
Clustered Points*, Brisaboa et al.).  Level 0 is the existing GFU
entries themselves (``dgf:<table>:<index>:<gfukey>``); every higher
level stores one :class:`PyramidNode` per aligned block of ``fanout``
children along each dimension:

* ``dgfpyr:<table>:<index>:<level>:<b1>_<b2>...`` -> PyramidNode

where ``b_i = floor(k_i / fanout**level)`` is the block coordinate of
grid cell ``k_i``.  The namespace is per (table, index) exactly like
:class:`~repro.core.dgf.store.DgfStore`; replica-fleet layouts get
their own pyramids under their ``<index>@<layout>`` alias names.

An **absent** node means "no GFU exists in this block" — the builder
materializes every ancestor of every present cell, so readers treat a
miss as an empty region.  A node with ``demoted=True`` is a marker
written when some cell under it can no longer be summarized (resident
streaming deltas, tombstones): its header is meaningless and readers
must recurse into the block's children instead.

Reads go through :func:`~repro.core.dgf.store.cached_fetch`, so the
:class:`~repro.service.cache.GfuMetadataCache` caches pyramid nodes
with the same exact-key write-listener invalidation as GFU entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Dict, Iterator, List, Optional, Sequence, Tuple,
                    TYPE_CHECKING)

from repro.core.dgf.policy import KEY_SEPARATOR
from repro.core.dgf.store import cached_fetch
from repro.kvstore.hbase import KVStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.cache import GfuMetadataCache

#: KV key namespace of pyramid nodes (sibling of ``dgf:`` / ``dgfmeta:``).
PYRAMID_PREFIX = "dgfpyr"

#: ``(level, block coordinates)`` — the identity of one pyramid node.
NodeId = Tuple[int, Tuple[int, ...]]


@dataclass
class PyramidNode:
    """The additive fold of one aligned block of GFU cells.

    ``header`` carries the same canonical aggregate states as
    :class:`~repro.core.dgf.gfu.GFUValue.header` (so the handler's
    header-merge fold accepts nodes and GFU values interchangeably);
    ``cells`` counts the *present* level-0 GFUs under the node — the
    query path uses it to report the same ``inner GFU`` hit count the
    flat header probe would have seen.
    """

    header: Dict[str, Any] = field(default_factory=dict)
    cells: int = 0
    records: int = 0
    #: a cell under this node cannot be summarized (tombstones or
    #: resident streaming deltas); readers recurse into the children.
    demoted: bool = False


def node_key(level: int, block: Sequence[int]) -> str:
    """Bare (un-namespaced) KV key of node ``(level, block)``."""
    return f"{level}:" + KEY_SEPARATOR.join(str(b) for b in block)


def parse_node_key(key: str) -> NodeId:
    """Inverse of :func:`node_key`."""
    level_text, block_text = key.split(":", 1)
    return (int(level_text),
            tuple(int(b) for b in block_text.split(KEY_SEPARATOR)))


class PyramidStore:
    """Typed access to one index's pyramid slice of the KV store."""

    def __init__(self, kvstore: KVStore, table: str, index: str,
                 cache: Optional["GfuMetadataCache"] = None):
        self.kvstore = kvstore
        self.cache = cache
        self._prefix = f"{PYRAMID_PREFIX}:{table.lower()}:{index.lower()}:"

    # ------------------------------------------------------------------ keys
    def full_key(self, level: int, block: Sequence[int]) -> str:
        return self._prefix + node_key(level, block)

    # ------------------------------------------------------------------- ops
    def put_node(self, level: int, block: Sequence[int],
                 node: PyramidNode) -> None:
        self.kvstore.put(self.full_key(level, block), node)

    def get_node(self, level: int,
                 block: Sequence[int]) -> Optional[PyramidNode]:
        return self.kvstore.get(self.full_key(level, block))

    def delete_node(self, level: int, block: Sequence[int]) -> bool:
        return self.kvstore.delete(self.full_key(level, block))

    def multi_get(self, node_ids: Sequence[NodeId]) -> Dict[NodeId,
                                                            PyramidNode]:
        """Batch node fetch; absent nodes (empty regions) are omitted.

        Served through :func:`cached_fetch` so cache state never changes
        the logical per-query accounting.
        """
        full_keys = [self.full_key(level, block)
                     for level, block in node_ids]
        found = cached_fetch(self.kvstore, self.cache, full_keys)
        return {parse_node_key(key[len(self._prefix):]): value
                for key, value in found.items()}

    def iter_nodes(self) -> Iterator[Tuple[NodeId, PyramidNode]]:
        stop = self._prefix + "\U0010ffff"
        for key, value in self.kvstore.scan(self._prefix, stop):
            yield parse_node_key(key[len(self._prefix):]), value

    def count_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def clear(self) -> None:
        for (level, block), _value in list(self.iter_nodes()):
            self.kvstore.delete(self.full_key(level, block))
