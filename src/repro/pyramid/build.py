"""Building and maintaining the GFU aggregation pyramid.

The pyramid is derived state: every node is the fold of its children
with the *same* canonical merge functions the handler uses to fold
inner-GFU headers (``merge_function_for`` / ``AvgAgg``), applied in
canonical child-coordinate order so floating-point folds are
deterministic and independent of build concurrency.

Enablement is recorded in ``IndexInfo.state[PYRAMID_STATE_KEY]``::

    {"fanout": 2, "layouts": {"primary": 7, "timefine": 8}}

so plan time learns the built depth per layout with **zero** extra KV
reads, exactly like the replica fleet's ``layouts`` registry.  The
registry maps each layout (the primary included) to its built level
count; a missing entry means "no pyramid" and queries stay on the flat
header path.

Maintenance entry points (all traced under ``pyramid:*`` spans so the
differential harness can normalize them away):

* :func:`rebuild_pyramid` — full rebuild from the base GFU entries
  (index build/rebuild, precompute changes, layout builds, compaction
  catch-up).
* :func:`refresh_cells` — incremental bottom-up recompute of the
  ancestor chains of a touched cell set (appends along the time
  dimension, post-compaction repair).
* :func:`demote_cells` — write ``demoted`` markers on the ancestor
  chains of cells that can no longer be summarized (streaming-delta
  residency, tombstones).
"""

from __future__ import annotations

from itertools import product
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.dgf.gfu import GFUValue
from repro.core.dgf.policy import KEY_SEPARATOR, SplittingPolicy
from repro.errors import DGFError
from repro.hive.aggregates import AggFunction, AvgAgg
from repro.pyramid.store import PyramidNode, PyramidStore

#: ``IndexInfo.state`` key holding the pyramid registry.
PYRAMID_STATE_KEY = "pyramid"
#: children folded per dimension at each level (2**dims per node).
DEFAULT_FANOUT = 2


# --------------------------------------------------------------------- state
def pyramid_state(index) -> Optional[Dict[str, Any]]:
    """The index's pyramid registry, or ``None`` when never enabled."""
    return index.state.get(PYRAMID_STATE_KEY)


def pyramid_fanout(index) -> int:
    state = pyramid_state(index)
    if not state:
        return DEFAULT_FANOUT
    return int(state.get("fanout", DEFAULT_FANOUT))


def pyramid_levels(index, layout_name: Optional[str]) -> int:
    """Built pyramid depth for ``layout_name`` (``None`` = primary);
    0 when the layout has no pyramid."""
    state = pyramid_state(index)
    if not state:
        return 0
    if layout_name is None:
        from repro.hdfs.layout import PRIMARY_LAYOUT
        layout_name = PRIMARY_LAYOUT
    return int(state.get("layouts", {}).get(layout_name, 0))


def storage_index_name(index_name: str,
                       layout_name: Optional[str]) -> str:
    """KV namespace alias of ``(index, layout)`` — the primary uses the
    bare index name, replicas their ``<index>@<layout>`` alias."""
    from repro.hdfs.layout import PRIMARY_LAYOUT
    if layout_name is None or layout_name == PRIMARY_LAYOUT:
        return index_name
    from repro.core.dgf import fleet
    return fleet.layout_index_name(index_name, layout_name)


def pyramid_store(session, table_name: str, index_name: str,
                  layout_name: Optional[str] = None) -> PyramidStore:
    """A :class:`PyramidStore` wired to the session's metadata cache."""
    return PyramidStore(session.kvstore, table_name,
                        storage_index_name(index_name, layout_name),
                        cache=session.metadata_cache)


# ------------------------------------------------------------------ geometry
def cell_coords(policy: SplittingPolicy,
                cell_key: str) -> Tuple[int, ...]:
    """Grid cell-index vector of a GFUKey (inverse of ``key_of_cells``)."""
    labels = cell_key.split(KEY_SEPARATOR)
    if len(labels) != len(policy.dimensions):
        raise DGFError(
            f"GFUKey {cell_key!r} has {len(labels)} segments; policy has "
            f"{len(policy.dimensions)} dimensions")
    return tuple(dim.cell_of(dim.parse_label(label))
                 for dim, label in zip(policy.dimensions, labels))


def levels_for_extent(extent: int, fanout: int) -> int:
    """Smallest depth whose top-level blocks span ``extent`` cells."""
    levels, size = 1, fanout
    while size < max(1, extent):
        size *= fanout
        levels += 1
    return levels


def _levels_for(coords: Iterable[Tuple[int, ...]], fanout: int) -> int:
    coords = list(coords)
    if not coords:
        return 1
    best = 1
    for axis in range(len(coords[0])):
        values = [c[axis] for c in coords]
        best = max(best,
                   levels_for_extent(max(values) - min(values) + 1, fanout))
    return best


def children_of(block: Sequence[int],
                fanout: int) -> List[Tuple[int, ...]]:
    """Child blocks (or, below level 1, cells) of ``block``, in canonical
    ascending coordinate order."""
    return [tuple(child) for child in
            product(*[range(b * fanout, b * fanout + fanout)
                      for b in block])]


# --------------------------------------------------------------------- folds
def _merge_fn(key: str) -> AggFunction:
    from repro.core.dgf.handler import merge_function_for
    try:
        return merge_function_for(key)
    except DGFError:
        if key.startswith("avg("):
            # AvgAgg's (sum, count) state is additive too.
            return AvgAgg()
        raise


def fold_children(children: Sequence[Any],
                  fns: Optional[Dict[str, AggFunction]] = None
                  ) -> PyramidNode:
    """Fold header-bearing children (GFUValues or PyramidNodes), already
    in canonical coordinate order, into one parent node."""
    if fns is None:
        fns = {}
    header: Dict[str, Any] = {}
    cells = records = 0
    for child in children:
        for key, state in child.header.items():
            if key in header:
                fn = fns.get(key)
                if fn is None:
                    fn = fns[key] = _merge_fn(key)
                header[key] = fn.merge(header[key], state)
            else:
                header[key] = state
        if isinstance(child, PyramidNode):
            cells += child.cells
            records += child.records
        else:
            cells += 1
            records += child.records
    return PyramidNode(header=header, cells=cells, records=records)


# --------------------------------------------------------------- maintenance
def rebuild_pyramid(session, index,
                    layout_name: Optional[str] = None) -> Dict[str, int]:
    """Full rebuild of one (index, layout) pyramid from its base GFUs.

    Clears the namespace, folds bottom-up level by level (children in
    sorted coordinate order), and records the built depth in the
    index's pyramid registry.  Returns ``{"levels": .., "nodes": ..}``.
    """
    from repro.hdfs.layout import PRIMARY_LAYOUT
    table_name = index.table
    store = session.dgf_store(table_name,
                              storage_index_name(index.name, layout_name))
    pstore = pyramid_store(session, table_name, index.name, layout_name)
    policy = store.load_policy()
    fanout = pyramid_fanout(index)
    fns: Dict[str, AggFunction] = {}
    with session.tracer.span("pyramid:build") as span:
        pstore.clear()
        base: Dict[Tuple[int, ...], Any] = {}
        for cell_key, value in store.iter_entries():
            base[cell_coords(policy, cell_key)] = value
        levels = _levels_for(base.keys(), fanout)
        nodes_written = 0
        level_data: Dict[Tuple[int, ...], Any] = base
        for level in range(1, levels + 1):
            groups: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
            for coords in sorted(level_data):
                groups.setdefault(tuple(c // fanout for c in coords),
                                  []).append(coords)
            parents: Dict[Tuple[int, ...], PyramidNode] = {}
            for block in sorted(groups):
                node = fold_children(
                    [level_data[c] for c in sorted(groups[block])], fns)
                pstore.put_node(level, block, node)
                parents[block] = node
                nodes_written += 1
            level_data = parents
        span.set("layout", layout_name or PRIMARY_LAYOUT)
        span.set("levels", levels)
        span.add("pyramid.nodes_built", nodes_written)
    state = index.state.setdefault(
        PYRAMID_STATE_KEY, {"fanout": fanout, "layouts": {}})
    state.setdefault("layouts", {})[layout_name or PRIMARY_LAYOUT] = levels
    return {"levels": levels, "nodes": nodes_written}


def refresh_cells(session, index, cells: Iterable[str],
                  layout_name: Optional[str] = None,
                  keep_demoted: Iterable[str] = ()) -> int:
    """Bottom-up recompute of the ancestor chains of ``cells``.

    Used after appends (the touched cells advance along the time
    dimension) and after compaction folds deltas into the base GFUs.
    Blocks still covering a ``keep_demoted`` cell — or a child that is
    itself a demotion marker — get a fresh ``demoted`` marker instead
    of a recomputed value, so a partially compacted index never
    presents a summarizable node over an unsummarizable cell.  Empty
    blocks (no surviving child) are deleted, propagating emptiness
    upward.  Returns the number of nodes written or deleted.
    """
    levels = pyramid_levels(index, layout_name)
    if not levels:
        return 0
    fanout = pyramid_fanout(index)
    table_name = index.table
    store = session.dgf_store(table_name,
                              storage_index_name(index.name, layout_name))
    pstore = pyramid_store(session, table_name, index.name, layout_name)
    policy = store.load_policy()
    coords = sorted({cell_coords(policy, cell) for cell in cells})
    if not coords:
        return 0
    # A touched cell outside the built extent deepens the pyramid; the
    # new super-levels fold *all* existing blocks, so incremental repair
    # cannot stay local — escalate to a rebuild (rare: only when an
    # append outruns the grid the index was built over).
    needed = max(levels_for_extent(hi - lo + 1, fanout)
                 for lo, hi in store.load_bounds().values())
    if needed > levels:
        summary = rebuild_pyramid(session, index, layout_name)
        keep = list(keep_demoted)
        if keep:
            demote_cells(session, index, keep, layout_name)
        return summary["nodes"]
    demoted_coords = {cell_coords(policy, cell) for cell in keep_demoted}
    fns: Dict[str, AggFunction] = {}
    touched = 0
    with session.tracer.span("pyramid:refresh") as span:
        for level in range(1, levels + 1):
            size = fanout ** level
            blocks = sorted({tuple(c // size for c in coord)
                             for coord in coords})
            for block in blocks:
                if any(all(b * size <= d < (b + 1) * size
                           for b, d in zip(block, dcoord))
                       for dcoord in demoted_coords):
                    pstore.put_node(level, block, PyramidNode(demoted=True))
                    touched += 1
                    continue
                children = children_of(block, fanout)
                if level == 1:
                    keys = [policy.key_of_cells(child)
                            for child in children]
                    present = store.multi_get(keys)
                    values = [present[key] for key in keys
                              if key in present]
                    poisoned = False
                else:
                    fetched = pstore.multi_get(
                        [(level - 1, child) for child in children])
                    ordered = [fetched[(level - 1, child)]
                               for child in children
                               if (level - 1, child) in fetched]
                    poisoned = any(node.demoted for node in ordered)
                    values = [node for node in ordered if not node.demoted]
                if poisoned:
                    pstore.put_node(level, block, PyramidNode(demoted=True))
                elif values:
                    pstore.put_node(level, block,
                                    fold_children(values, fns))
                else:
                    pstore.delete_node(level, block)
                touched += 1
        span.set("layout", layout_name or _primary_name())
        span.add("pyramid.nodes_refreshed", touched)
    return touched


def demote_cells(session, index, cells: Iterable[str],
                 layout_name: Optional[str] = None) -> int:
    """Mark the ancestor chains of ``cells`` as demoted.

    Called when streaming deltas land on (or tombstone) a cell: its
    pre-computed summaries are stale until compaction, so every node
    above it becomes a marker that readers recurse through.  Returns
    the number of markers written.
    """
    levels = pyramid_levels(index, layout_name)
    if not levels:
        return 0
    fanout = pyramid_fanout(index)
    table_name = index.table
    store = session.dgf_store(table_name,
                              storage_index_name(index.name, layout_name))
    pstore = pyramid_store(session, table_name, index.name, layout_name)
    policy = store.load_policy()
    coords = {cell_coords(policy, cell) for cell in cells}
    if not coords:
        return 0
    marked = 0
    with session.tracer.span("pyramid:demote") as span:
        for level in range(1, levels + 1):
            size = fanout ** level
            for block in sorted({tuple(c // size for c in coord)
                                 for coord in coords}):
                pstore.put_node(level, block, PyramidNode(demoted=True))
                marked += 1
        span.add("pyramid.nodes_demoted", marked)
    return marked


def drop_pyramid(session, table_name: str, index_name: str,
                 layout_name: Optional[str] = None) -> None:
    """Delete one (index, layout) pyramid namespace."""
    PyramidStore(session.kvstore, table_name,
                 storage_index_name(index_name, layout_name)).clear()


def _primary_name() -> str:
    from repro.hdfs.layout import PRIMARY_LAYOUT
    return PRIMARY_LAYOUT
