"""Greedy decomposition of an inner region into maximal pyramid nodes.

Algorithm 3 gives the query's inner region as an axis-aligned box of
grid cells.  :func:`cover_box` covers that box with the largest aligned
pyramid blocks that fit entirely inside it (k²-tree style), dropping to
level-0 cells only at the misaligned fringe — O(polylog) probes instead
of one probe per inner cell.  :func:`resolve_cover` then fetches the
cover, recursing through ``demoted`` markers down to base GFU entries,
and returns the header-bearing values in canonical coordinate order so
the handler's float folds stay deterministic.

Both halves are pure geometry plus batched KV reads; neither mutates
anything, so the same code prices hypothetical pyramids for the layout
router and the what-if evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import (Any, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Set, Tuple)

from repro.core.dgf.policy import SplittingPolicy
from repro.pyramid.build import cell_coords, children_of
from repro.pyramid.store import NodeId, PyramidNode, PyramidStore

Coords = Tuple[int, ...]


@dataclass
class PyramidCover:
    """A disjoint cover of the inner box: internal nodes + fringe cells."""

    nodes: List[NodeId] = field(default_factory=list)
    leaves: List[Coords] = field(default_factory=list)
    #: built pyramid depth the cover was computed against.
    levels: int = 0

    @property
    def probes(self) -> int:
        return len(self.nodes) + len(self.leaves)


def cover_box(lo: Coords, hi: Coords, blocked: FrozenSet[Coords],
              fanout: int, levels: int) -> Tuple[List[NodeId],
                                                 List[Coords]]:
    """Maximal aligned cover of the inclusive cell box ``[lo, hi]``.

    A block is emitted as a node only when it lies entirely inside the
    box and contains no ``blocked`` cell (cells whose summaries may not
    be used — tombstone-demoted inner cells); everything else recurses
    down to level-0 ``leaves``.  Traversal order is canonical (sorted
    blocks, children ascending), so the cover — and therefore every
    downstream float fold — is deterministic.
    """
    nodes: List[NodeId] = []
    leaves: List[Coords] = []

    def recurse(level: int, block: Coords) -> None:
        size = fanout ** level
        region_lo = tuple(b * size for b in block)
        region_hi = tuple(b * size + size - 1 for b in block)
        if any(rlo > h or rhi < l for rlo, rhi, l, h
               in zip(region_lo, region_hi, lo, hi)):
            return
        if level == 0:
            if block not in blocked:
                leaves.append(block)
            return
        inside = all(l <= rlo and rhi <= h for rlo, rhi, l, h
                     in zip(region_lo, region_hi, lo, hi))
        if inside and not any(
                all(rlo <= b <= rhi for rlo, rhi, b
                    in zip(region_lo, region_hi, cell))
                for cell in blocked):
            nodes.append((level, block))
            return
        for child in children_of(block, fanout):
            recurse(level - 1, child)

    top = fanout ** levels
    for block in product(*[range(l // top, h // top + 1)
                           for l, h in zip(lo, hi)]):
        recurse(levels, tuple(block))
    return nodes, leaves


def decompose_region(policy: SplittingPolicy,
                     inner_keys: Sequence[str],
                     blocked_keys: Iterable[str],
                     fanout: int, levels: int) -> Optional[PyramidCover]:
    """Cover the inner region named by ``inner_keys`` (the full box the
    grid search produced, *before* tombstone demotion) with maximal
    pyramid nodes, keeping ``blocked_keys`` cells out of every node.

    Returns ``None`` when the keys do not form a full axis-aligned box
    (never the case for Algorithm 3 output; kept as a safe fallback to
    the flat header path).
    """
    if not inner_keys or levels <= 0:
        return None
    coords = [cell_coords(policy, key) for key in inner_keys]
    dims = len(policy.dimensions)
    lo = tuple(min(c[axis] for c in coords) for axis in range(dims))
    hi = tuple(max(c[axis] for c in coords) for axis in range(dims))
    volume = 1
    for l, h in zip(lo, hi):
        volume *= h - l + 1
    if volume != len(set(coords)):
        return None
    blocked = frozenset(cell_coords(policy, key) for key in blocked_keys)
    nodes, leaves = cover_box(lo, hi, blocked, fanout, levels)
    return PyramidCover(nodes=nodes, leaves=leaves, levels=levels)


def resolve_cover(pstore: PyramidStore, store, policy: SplittingPolicy,
                  cover: PyramidCover,
                  fanout: int) -> Tuple[List[Any], Dict[str, int]]:
    """Fetch a cover's nodes and fringe cells from the KV store.

    Demoted markers expand into their children and are re-fetched,
    level by level, until everything resolves to either a summarizable
    node or a base GFU entry.  Returns the header-bearing values sorted
    by region origin (canonical fold order) plus the probe statistics
    surfaced in ``EXPLAIN`` / the ``dgf.pyramid`` span:

    * ``nodes`` — internal nodes whose summaries were used,
    * ``leaves`` — level-0 header probes issued,
    * ``levels`` — highest node level used (0 when the fringe covered
      everything),
    * ``gets`` — physical KV probes issued by the pyramid path,
    * ``inner_hits`` — present base GFUs represented, which equals the
      flat path's inner-GFU hit count by construction.
    """
    contributions: List[Tuple[Coords, Any]] = []
    nodes_used = 0
    top_level = 0
    gets = 0
    leaves: List[Coords] = list(cover.leaves)
    pending: List[NodeId] = sorted(cover.nodes)
    while pending:
        fetched = pstore.multi_get(pending)
        gets += len(pending)
        next_pending: List[NodeId] = []
        for level, block in pending:
            node = fetched.get((level, block))
            if node is None:
                continue  # empty region: no GFU exists under this block
            if node.demoted:
                if level == 1:
                    leaves.extend(children_of(block, fanout))
                else:
                    next_pending.extend(
                        (level - 1, child)
                        for child in children_of(block, fanout))
            else:
                size = fanout ** level
                contributions.append(
                    (tuple(b * size for b in block), node))
                nodes_used += 1
                top_level = max(top_level, level)
        pending = sorted(next_pending)
    leaves = sorted(set(leaves))
    leaf_keys = [policy.key_of_cells(cell) for cell in leaves]
    found = store.multi_get(leaf_keys)
    gets += len(leaf_keys)
    leaf_hits = 0
    for cell, key in zip(leaves, leaf_keys):
        value = found.get(key)
        if value is not None:
            contributions.append((cell, value))
            leaf_hits += 1
    contributions.sort(key=lambda item: item[0])
    inner_hits = leaf_hits + sum(
        obj.cells for _, obj in contributions
        if isinstance(obj, PyramidNode))
    stats = {"nodes": nodes_used, "leaves": len(leaf_keys),
             "levels": top_level, "gets": gets, "inner_hits": inner_hits}
    return [obj for _, obj in contributions], stats
