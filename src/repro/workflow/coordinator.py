"""The coordinator: fixed-frequency workflow scheduling over simulated
time (Oozie's coordinator, which in the paper fires all stored procedures,
archive synchronization and statistic-data ETL)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.workflow.dag import Workflow, WorkflowError, WorkflowRun


@dataclass
class ScheduledWorkflow:
    """A workflow registered with a period (simulated seconds) and an
    optional start offset."""

    workflow: Workflow
    period: float
    next_fire: float = 0.0
    #: optional factory building the per-run context (e.g. "which day of
    #: meter data arrived"); receives the fire time.
    context_factory: Optional[Callable[[float], Dict[str, Any]]] = None


@dataclass
class FiredRun:
    """One materialized run, with its fire time."""

    time: float
    run: WorkflowRun


class Coordinator:
    """Advances a simulated clock and fires due workflows in time order.

    Deterministic: ties fire in registration order, and a workflow's runs
    never overlap (a run conceptually completes before its next period —
    the paper's daily statistics jobs are far shorter than their period).
    """

    def __init__(self, session=None):
        self.session = session
        self._scheduled: List[ScheduledWorkflow] = []
        self._now = 0.0
        self.history: List[FiredRun] = []

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, workflow: Workflow, period: float,
                 start: float = 0.0,
                 context_factory=None) -> ScheduledWorkflow:
        if period <= 0:
            raise WorkflowError(
                f"workflow {workflow.name!r}: period must be positive")
        entry = ScheduledWorkflow(workflow=workflow, period=period,
                                  next_fire=start,
                                  context_factory=context_factory)
        self._scheduled.append(entry)
        return entry

    def advance_to(self, time: float) -> List[FiredRun]:
        """Fire everything due up to and including ``time``; return the
        runs fired by this call, in fire order."""
        if time < self._now:
            raise WorkflowError(
                f"cannot rewind the clock from {self._now} to {time}")
        fired: List[FiredRun] = []
        while True:
            due = [entry for entry in self._scheduled
                   if entry.next_fire <= time]
            if not due:
                break
            entry = min(due, key=lambda e: (e.next_fire,
                                            self._scheduled.index(e)))
            self._now = max(self._now, entry.next_fire)
            context = entry.context_factory(entry.next_fire) \
                if entry.context_factory else None
            run = entry.workflow.run(self.session, context)
            record = FiredRun(time=entry.next_fire, run=run)
            fired.append(record)
            self.history.append(record)
            entry.next_fire += entry.period
        self._now = time
        return fired

    def advance_by(self, delta: float) -> List[FiredRun]:
        return self.advance_to(self._now + delta)

    def runs_of(self, workflow_name: str) -> List[FiredRun]:
        return [record for record in self.history
                if record.run.workflow == workflow_name]
