"""Oozie-like workflow orchestration (the paper's Section 3 data flow).

The Zhejiang Grid migration turns each RDBMS stored procedure (tens of SQL
statements) into a DAG of HiveQL actions, organized as a *workflow* and
fired at fixed frequencies by a *coordinator* — together with archive-data
synchronization and statistic-data ETL.  This package reproduces that
orchestration layer:

* :class:`~repro.workflow.dag.Workflow` — a named DAG of actions
  (HiveQL statements or Python callables) with dependency edges,
  topological execution, per-action status and failure propagation;
* :class:`~repro.workflow.coordinator.Coordinator` — fixed-frequency
  scheduling over a simulated clock, materializing workflow runs exactly
  like Oozie's coordinator does.
"""

from repro.workflow.dag import (Action, ActionStatus, Workflow,
                                WorkflowRun)
from repro.workflow.coordinator import Coordinator, ScheduledWorkflow

__all__ = [
    "Action",
    "ActionStatus",
    "Workflow",
    "WorkflowRun",
    "Coordinator",
    "ScheduledWorkflow",
]
