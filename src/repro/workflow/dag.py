"""Workflow DAGs of HiveQL actions (Oozie work flows, as in the paper).

A stored procedure from the legacy RDBMS becomes a :class:`Workflow`: each
SQL statement is an :class:`Action`, and control dependencies become DAG
edges.  Actions are either HiveQL text (executed through the workflow's
:class:`~repro.hive.session.HiveSession`) or arbitrary Python callables
(for the archive-synchronization / ETL steps that talk to the "RDBMS").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError


class WorkflowError(ReproError):
    """Invalid workflow definitions or execution failures."""


class ActionStatus(enum.Enum):
    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    SKIPPED = "skipped"  # an upstream dependency failed


@dataclass
class Action:
    """One node of the DAG.

    ``payload`` is HiveQL text, or a callable receiving the workflow's
    context dict and returning a result.  ``after`` lists the names of
    actions that must succeed first.
    """

    name: str
    payload: Any
    after: Sequence[str] = ()
    #: total attempts before the action counts as FAILED (bounded retry
    #: for transient mid-DAG failures; 1 = no retry).
    max_attempts: int = 1

    def is_hiveql(self) -> bool:
        return isinstance(self.payload, str)


@dataclass
class ActionResult:
    name: str
    status: ActionStatus
    result: Any = None
    error: Optional[str] = None
    #: attempts actually executed (0 for SKIPPED actions).
    attempts: int = 0


@dataclass
class WorkflowRun:
    """Outcome of one workflow execution."""

    workflow: str
    results: Dict[str, ActionResult] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return all(r.status is ActionStatus.SUCCEEDED
                   for r in self.results.values())

    def status_of(self, name: str) -> ActionStatus:
        return self.results[name].status

    def result_of(self, name: str) -> Any:
        return self.results[name].result


class Workflow:
    """A named DAG of actions executed in topological order."""

    def __init__(self, name: str):
        self.name = name
        self._actions: Dict[str, Action] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------ definition
    def add(self, name: str, payload: Any,
            after: Sequence[str] = (),
            max_attempts: int = 1) -> "Workflow":
        """Add an action; returns self so definitions chain."""
        if name in self._actions:
            raise WorkflowError(
                f"workflow {self.name!r}: duplicate action {name!r}")
        if max_attempts < 1:
            raise WorkflowError(
                f"workflow {self.name!r}: action {name!r} max_attempts "
                "must be >= 1")
        for dep in after:
            if dep not in self._actions:
                raise WorkflowError(
                    f"workflow {self.name!r}: action {name!r} depends on "
                    f"unknown action {dep!r} (define dependencies first)")
        self._actions[name] = Action(name=name, payload=payload,
                                     after=tuple(after),
                                     max_attempts=max_attempts)
        self._order.append(name)
        return self

    def add_hiveql(self, name: str, sql: str,
                   after: Sequence[str] = ()) -> "Workflow":
        if not isinstance(sql, str):
            raise WorkflowError(f"action {name!r}: HiveQL must be text")
        return self.add(name, sql, after)

    @property
    def action_names(self) -> List[str]:
        return list(self._order)

    def topological_order(self) -> List[str]:
        """Kahn's algorithm, stable with respect to definition order.

        Because ``add`` only accepts already-defined dependencies the DAG
        is acyclic by construction; this still validates and gives the
        canonical order.
        """
        indegree = {name: len(action.after)
                    for name, action in self._actions.items()}
        children: Dict[str, List[str]] = {name: [] for name in self._actions}
        for action in self._actions.values():
            for dep in action.after:
                children[dep].append(action.name)
        ready = [name for name in self._order if indegree[name] == 0]
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for child in children[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._actions):  # pragma: no cover - guarded
            raise WorkflowError(f"workflow {self.name!r} has a cycle")
        return order

    # ------------------------------------------------------------- execution
    def run(self, session=None,
            context: Optional[Dict[str, Any]] = None) -> WorkflowRun:
        """Execute the DAG.  HiveQL actions need ``session``; callables get
        the ``context`` dict (which also accumulates results under
        ``context['results']``)."""
        run = WorkflowRun(workflow=self.name)
        context = dict(context or {})
        context.setdefault("results", {})
        for name in self.topological_order():
            action = self._actions[name]
            failed_dep = any(
                run.results[dep].status is not ActionStatus.SUCCEEDED
                for dep in action.after)
            if failed_dep:
                run.results[name] = ActionResult(
                    name=name, status=ActionStatus.SKIPPED, attempts=0)
                continue
            # Bounded retry: each attempt is a fresh execution of the
            # payload; the action fails only when every attempt raised
            # (and its failure still only SKIPs downstream actions — a
            # mid-DAG failure never strands the rest of the run).
            attempts = 0
            error: Optional[str] = None
            while attempts < action.max_attempts:
                attempts += 1
                try:
                    if action.is_hiveql():
                        if session is None:
                            raise WorkflowError(
                                f"action {name!r} is HiveQL but the workflow "
                                "was run without a session")
                        result = session.execute(action.payload)
                    else:
                        result = action.payload(context)
                except Exception as exc:  # noqa: BLE001 - report, don't hide
                    error = f"{type(exc).__name__}: {exc}"
                    continue
                context["results"][name] = result
                run.results[name] = ActionResult(
                    name=name, status=ActionStatus.SUCCEEDED,
                    result=result, attempts=attempts)
                break
            else:
                run.results[name] = ActionResult(
                    name=name, status=ActionStatus.FAILED,
                    error=error, attempts=attempts)
        return run
